package bandit

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func mustNew(t *testing.T, policy string, seed uint64) Estimator {
	t.Helper()
	e, err := New(policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewPolicies(t *testing.T) {
	for _, policy := range []string{PolicyUCB, PolicyThompson, PolicyFrozen} {
		e := mustNew(t, policy, 7)
		if e.Policy() != policy {
			t.Errorf("Policy() = %q, want %q", e.Policy(), policy)
		}
	}
	if _, err := New("egreedy", 7); err == nil {
		t.Error("unknown policy accepted")
	}
	if NewUCB(1).Policy() != PolicyUCB || NewThompson(1).Policy() != PolicyThompson ||
		NewFrozen().Policy() != PolicyFrozen {
		t.Error("convenience constructors returned wrong policies")
	}
}

func TestObserveValidation(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"valid", Event{Ad: "a", Impressions: 10, Clicks: 3}, true},
		{"zero counts", Event{Ad: "a"}, true},
		{"bucketed", Event{Ad: "a", Bucket: 2, Impressions: 5, Clicks: 5}, true},
		{"no ad", Event{Impressions: 1}, false},
		{"negative bucket", Event{Ad: "a", Bucket: -1, Impressions: 1}, false},
		{"negative impressions", Event{Ad: "a", Impressions: -1}, false},
		{"negative clicks", Event{Ad: "a", Impressions: 1, Clicks: -1}, false},
		{"clicks exceed impressions", Event{Ad: "a", Impressions: 1, Clicks: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewUCB(1)
			err := e.Observe(tc.ev)
			if tc.ok && err != nil {
				t.Fatalf("Observe(%+v) = %v", tc.ev, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("Observe(%+v) accepted", tc.ev)
				}
				if e.Events() != 0 || e.Impressions(tc.ev.Ad) != 0 {
					t.Error("rejected event mutated state")
				}
			}
		})
	}
}

func TestCountsAndMeans(t *testing.T) {
	e := NewUCB(1)
	for _, ev := range []Event{
		{Ad: "a", Bucket: 0, Impressions: 8, Clicks: 2},
		{Ad: "a", Bucket: 1, Impressions: 10, Clicks: 8},
		{Ad: "b", Bucket: 0, Impressions: 4, Clicks: 0},
	} {
		if err := e.Observe(ev); err != nil {
			t.Fatal(err)
		}
	}
	if e.Events() != 3 {
		t.Errorf("Events() = %d, want 3", e.Events())
	}
	if got := e.Impressions("a"); got != 18 {
		t.Errorf(`Impressions("a") = %d, want 18`, got)
	}
	if got := e.Clicks("a"); got != 10 {
		t.Errorf(`Clicks("a") = %d, want 10`, got)
	}
	if got, want := e.Mean("a"), 11.0/20.0; got != want {
		t.Errorf(`Mean("a") = %v, want %v`, got, want)
	}
	if got, want := e.Estimate("a", 0), 3.0/10.0; got != want {
		t.Errorf(`Estimate("a", 0) = %v, want %v`, got, want)
	}
	if got, want := e.Estimate("a", 1), 9.0/12.0; got != want {
		t.Errorf(`Estimate("a", 1) = %v, want %v`, got, want)
	}
	// Unknown ads and untouched buckets read the zero-count prior 1/2.
	if got := e.Mean("zzz"); got != 0.5 {
		t.Errorf(`Mean("zzz") = %v, want 0.5`, got)
	}
	if got := e.Estimate("b", 9); got != 0.5 {
		t.Errorf(`Estimate("b", 9) = %v, want 0.5`, got)
	}
}

func TestUCBIndex(t *testing.T) {
	e := NewUCB(1)
	if got := e.Index("fresh"); got != 1 {
		t.Fatalf("untried ad index = %v, want 1 (optimism)", got)
	}
	// One low-engagement batch: index = mean + bonus, inside (0, 1).
	if err := e.Observe(Event{Ad: "a", Impressions: 100, Clicks: 5}); err != nil {
		t.Fatal(err)
	}
	mean := e.Mean("a")
	bonus := DefaultUCBConstant * math.Sqrt(2*math.Log(1+100)/100)
	if got, want := e.Index("a"), mean+bonus; math.Abs(got-want) > 1e-12 {
		t.Fatalf(`Index("a") = %v, want mean %v + bonus %v`, got, mean, bonus)
	}
	// High-engagement batch clamps at 1.
	if err := e.Observe(Event{Ad: "hot", Impressions: 10, Clicks: 10}); err != nil {
		t.Fatal(err)
	}
	if got := e.Index("hot"); got != 1 {
		t.Fatalf(`Index("hot") = %v, want clamp at 1`, got)
	}
	// The bonus shrinks as the ad accumulates pulls.
	before := e.Index("a") - e.Mean("a")
	if err := e.Observe(Event{Ad: "a", Impressions: 400, Clicks: 20}); err != nil {
		t.Fatal(err)
	}
	after := e.Index("a") - e.Mean("a")
	if after >= before {
		t.Fatalf("UCB bonus grew with pulls: %v → %v", before, after)
	}
}

func TestThompsonDeterministicSampling(t *testing.T) {
	a := NewThompson(42)
	b := NewThompson(42)
	for _, e := range []Estimator{a, b} {
		if err := e.Observe(Event{Ad: "x", Impressions: 50, Clicks: 20}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Index("x") != b.Index("x") {
		t.Fatalf("same seed+state sampled differently: %v vs %v", a.Index("x"), b.Index("x"))
	}
	// Repeated reads without new feedback are stable (pure function of state).
	if a.Index("x") != a.Index("x") {
		t.Fatal("repeated Index reads diverged")
	}
	if got := a.Index("untried"); got != 1 {
		t.Fatalf("untried ad index = %v, want 1", got)
	}
	c := NewThompson(43)
	if err := c.Observe(Event{Ad: "x", Impressions: 50, Clicks: 20}); err != nil {
		t.Fatal(err)
	}
	if c.Index("x") == a.Index("x") {
		t.Fatal("different seeds produced identical posterior samples")
	}
	// New feedback moves the draw: the uniform depends on the counts.
	before := a.Index("x")
	if err := a.Observe(Event{Ad: "x", Impressions: 50, Clicks: 20}); err != nil {
		t.Fatal(err)
	}
	if a.Index("x") == before {
		t.Fatal("posterior sample ignored new counts")
	}
	if idx := a.Index("x"); idx < minIndex || idx > 1 {
		t.Fatalf("index %v outside [%v, 1]", idx, minIndex)
	}
}

func TestFrozenNeverUpdates(t *testing.T) {
	e := NewFrozen()
	if err := e.Observe(Event{Ad: "a", Impressions: 1000, Clicks: 1}); err != nil {
		t.Fatal(err)
	}
	if got := e.Index("a"); got != 1 {
		t.Fatalf("frozen index moved to %v", got)
	}
	base := []float64{0.25, 0.75}
	got := e.Overrides([]string{"a", "b"}, base)
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("frozen overrides %v, want base %v", got, base)
	}
	// Counts still accumulate (the baseline observes, it just never acts).
	if e.Impressions("a") != 1000 || e.Events() != 1 {
		t.Error("frozen estimator dropped the counts")
	}
}

func TestOverridesAndEffectiveCPE(t *testing.T) {
	e := NewUCB(1)
	if err := e.Observe(Event{Ad: "a", Impressions: 200, Clicks: 10}); err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b"}
	base := []float64{2, 3}
	got := e.Overrides(names, base)
	for i, name := range names {
		want := e.EffectiveCPE(name, base[i])
		if got[i] != want {
			t.Errorf("override[%d] = %v, want %v", i, got[i], want)
		}
		if got[i] <= 0 {
			t.Errorf("override[%d] = %v, must stay positive for core validation", i, got[i])
		}
	}
	if got[1] != 3 {
		t.Errorf("untried ad override %v, want base 3", got[1])
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	e.Overrides(names, []float64{1})
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, policy := range []string{PolicyUCB, PolicyThompson, PolicyFrozen} {
		t.Run(policy, func(t *testing.T) {
			e := mustNew(t, policy, 99)
			for i, ev := range []Event{
				{Ad: "beta", Bucket: 1, Impressions: 30, Clicks: 12},
				{Ad: "alpha", Bucket: 2, Impressions: 7, Clicks: 0},
				{Ad: "alpha", Bucket: 0, Impressions: 15, Clicks: 15},
				{Ad: "beta", Bucket: 1, Impressions: 5, Clicks: 1},
			} {
				if err := e.Observe(ev); err != nil {
					t.Fatalf("event %d: %v", i, err)
				}
			}
			st := e.Snapshot()
			// Cells come out sorted by (Ad, Bucket).
			for i := 1; i < len(st.Cells); i++ {
				p, c := st.Cells[i-1], st.Cells[i]
				if p.Ad > c.Ad || (p.Ad == c.Ad && p.Bucket >= c.Bucket) {
					t.Fatalf("cells not sorted: %+v before %+v", p, c)
				}
			}
			r, err := Restore(st)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r.Snapshot(), st) {
				t.Fatalf("snapshot changed across restore:\n%+v\n%+v", r.Snapshot(), st)
			}
			for _, ad := range []string{"alpha", "beta", "untried"} {
				if r.Index(ad) != e.Index(ad) {
					t.Errorf("restored Index(%q) = %v, want %v", ad, r.Index(ad), e.Index(ad))
				}
				if r.Mean(ad) != e.Mean(ad) {
					t.Errorf("restored Mean(%q) = %v, want %v", ad, r.Mean(ad), e.Mean(ad))
				}
			}
			if r.Events() != e.Events() {
				t.Errorf("restored Events() = %d, want %d", r.Events(), e.Events())
			}
		})
	}
}

func TestRestoreRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		st   State
	}{
		{"unknown policy", State{Policy: "egreedy"}},
		{"negative events", State{Policy: PolicyUCB, Events: -1}},
		{"negative constant", State{Policy: PolicyUCB, UCBConstFP: -1}},
		{"cell without ad", State{Policy: PolicyUCB, Cells: []Cell{{Impressions: 1}}}},
		{"negative bucket", State{Policy: PolicyUCB, Cells: []Cell{{Ad: "a", Bucket: -1}}}},
		{"clicks exceed impressions", State{Policy: PolicyUCB, Cells: []Cell{{Ad: "a", Impressions: 1, Clicks: 2}}}},
		{"duplicate cell", State{Policy: PolicyUCB, Cells: []Cell{{Ad: "a", Impressions: 1}, {Ad: "a", Impressions: 2}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Restore(tc.st); err == nil {
				t.Fatalf("Restore(%+v) accepted", tc.st)
			}
		})
	}
}

func TestExploration(t *testing.T) {
	e := NewUCB(1)
	// Untried: index 1, mean 1/2 → optimism 1/2.
	if got := e.Exploration("a"); got != 0.5 {
		t.Fatalf("untried exploration = %v, want 0.5", got)
	}
	if err := e.Observe(Event{Ad: "a", Impressions: 1000, Clicks: 300}); err != nil {
		t.Fatal(err)
	}
	after := e.Exploration("a")
	if after < 0 || after >= 0.5 {
		t.Fatalf("exploration after 1000 pulls = %v, want in [0, 0.5)", after)
	}
}

func TestInvNormCDF(t *testing.T) {
	if got := invNormCDF(0.5); math.Abs(got) > 1e-9 {
		t.Errorf("invNormCDF(0.5) = %v, want 0", got)
	}
	if got := invNormCDF(0.975); math.Abs(got-1.959964) > 1e-4 {
		t.Errorf("invNormCDF(0.975) = %v, want ≈1.96", got)
	}
	for _, p := range []float64{1e-9, 0.001, 0.01, 0.3, 0.7, 0.99, 0.999, 1 - 1e-9} {
		lo, hi := invNormCDF(p), invNormCDF(1-p)
		if math.Abs(lo+hi) > 1e-7 {
			t.Errorf("asymmetric: invNormCDF(%v)=%v, invNormCDF(%v)=%v", p, lo, 1-p, hi)
		}
		if p < 0.5 && lo >= 0 {
			t.Errorf("invNormCDF(%v) = %v, want negative", p, lo)
		}
	}
}

// TestConcurrentObserve exercises the mutex under -race: concurrent
// feedback and reads must neither race nor drop events.
func TestConcurrentObserve(t *testing.T) {
	e := NewThompson(5)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ad := string(rune('a' + w%3))
			for i := 0; i < perWorker; i++ {
				if err := e.Observe(Event{Ad: ad, Impressions: 2, Clicks: 1}); err != nil {
					t.Error(err)
					return
				}
				_ = e.Index(ad)
				_ = e.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if e.Events() != workers*perWorker {
		t.Fatalf("Events() = %d, want %d", e.Events(), workers*perWorker)
	}
}

// FuzzEstimatorInvariants drives both learning policies through arbitrary
// feedback sequences and checks the structural invariants the rest of the
// stack leans on: estimates stay in (0,1), counts are monotone, the UCB
// bonus never grows when an ad accumulates pulls, indexes stay in
// [minIndex, 1], and serialize→restore round-trips state exactly.
func FuzzEstimatorInvariants(f *testing.F) {
	f.Add([]byte{0, 0, 10, 3})
	f.Add([]byte{1, 1, 200, 199, 2, 0, 0, 0, 1, 3, 50, 25})
	f.Add([]byte{9, 9, 255, 255, 9, 9, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ucb := NewUCB(3)
		ts := NewThompson(3)
		for len(data) >= 4 {
			ev := Event{
				Ad:          string(rune('a' + int(data[0])%3)),
				Bucket:      int(data[1]) % 4,
				Impressions: int64(data[2]),
			}
			ev.Clicks = int64(data[3]) % (ev.Impressions + 1)
			data = data[4:]

			prevImps := ucb.Impressions(ev.Ad)
			prevClicks := ucb.Clicks(ev.Ad)
			prevEvents := ucb.Events()
			prevIdx := ucb.Index(ev.Ad)
			prevBonus := prevIdx - ucb.Mean(ev.Ad)

			for _, e := range []Estimator{ucb, ts} {
				if err := e.Observe(ev); err != nil {
					t.Fatalf("Observe(%+v) = %v", ev, err)
				}
			}

			// Counts are monotone and event counting is exact.
			if ucb.Impressions(ev.Ad) != prevImps+ev.Impressions ||
				ucb.Clicks(ev.Ad) != prevClicks+ev.Clicks {
				t.Fatal("counts not monotone-additive")
			}
			if ucb.Events() != prevEvents+1 {
				t.Fatal("event counter skipped")
			}

			for _, e := range []Estimator{ucb, ts} {
				m := e.Mean(ev.Ad)
				if !(m > 0 && m < 1) {
					t.Fatalf("%s mean %v outside (0,1)", e.Policy(), m)
				}
				est := e.Estimate(ev.Ad, ev.Bucket)
				if !(est > 0 && est < 1) {
					t.Fatalf("%s estimate %v outside (0,1)", e.Policy(), est)
				}
				idx := e.Index(ev.Ad)
				if idx < minIndex || idx > 1 {
					t.Fatalf("%s index %v outside [%v, 1]", e.Policy(), idx, minIndex)
				}
				if x := e.Exploration(ev.Ad); x < 0 || x > 1 {
					t.Fatalf("%s exploration %v outside [0,1]", e.Policy(), x)
				}
			}

			// UCB bonus shrinks with pulls: when neither side clamps at 1,
			// observing this ad cannot grow its exploration bonus (the ad's
			// n and the table's N grew by the same amount).
			if ev.Impressions > 0 {
				idx := ucb.Index(ev.Ad)
				if prevIdx < 1 && idx < 1 {
					bonus := idx - ucb.Mean(ev.Ad)
					if bonus > prevBonus+1e-12 {
						t.Fatalf("UCB bonus grew with pulls: %v → %v", prevBonus, bonus)
					}
				}
			}
		}

		// Serialize → restore round-trips exactly, including the policy
		// index for every ad seen (and one never seen).
		for _, e := range []Estimator{ucb, ts} {
			st := e.Snapshot()
			r, err := Restore(st)
			if err != nil {
				t.Fatalf("Restore(%+v) = %v", st, err)
			}
			if !reflect.DeepEqual(r.Snapshot(), st) {
				t.Fatal("snapshot not stable across restore")
			}
			for _, ad := range []string{"a", "b", "c", "never"} {
				if r.Index(ad) != e.Index(ad) {
					t.Fatalf("%s restored index diverged for %q", e.Policy(), ad)
				}
			}
		}
	})
}
