// Package bandit learns per-ad engagement rates online from click and
// impression feedback and turns the estimates into effective-CPE
// overrides for the allocator.
//
// The paper's TIRM formulation (and everything downstream of
// core.AllocateFromIndex) treats an ad's cost-per-engagement as a known
// constant. In production the engagement probability q_j that scales an
// advertiser's realized value is unknown and drifts, so the server must
// explore — occasionally allocating seeds to ads whose q_j is uncertain —
// while exploiting what it has learned. This package is that layer: a
// per-(ad, topic-bucket) count table behind one Estimator interface, with
// two classic index policies (UCB1 and Thompson sampling) plus a frozen
// never-update baseline used by the regret harness.
//
// Determinism is a hard requirement: every golden test in this repository
// pins exact traces, and the sharded coordinator must reproduce the
// single-node allocation bit for bit. Three design rules follow.
//
//  1. All estimator state is integers — impression and click counts, an
//     event counter, and the UCB exploration constant in 16.16 fixed
//     point. Snapshot/Restore round-trip exactly and the shard RPC
//     protocol ships the same integers, so no float crosses a boundary.
//  2. Thompson sampling draws no mutable RNG state. The posterior sample
//     for an ad is a pure function of (estimator seed, ad name hash,
//     counts): identical state always samples identically, on any
//     replica, in any order. The draw maps a derived uniform through an
//     inverse-normal approximation of the Beta posterior.
//  3. An untried ad has index 1 (optimism under uncertainty), so its
//     effective CPE equals its base CPE and a fresh estimator perturbs
//     nothing: allocations with zero feedback are byte-identical to
//     allocations with no estimator at all.
package bandit

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/xrand"
)

// Policy names accepted by New and carried in State.Policy.
const (
	// PolicyUCB is UCB1: index = mean + c·sqrt(2·ln(1+N)/n), clamped to 1.
	PolicyUCB = "ucb"
	// PolicyThompson is seeded Thompson sampling from a normal
	// approximation of the Beta posterior.
	PolicyThompson = "thompson"
	// PolicyFrozen never updates its index (always 1): the never-update
	// baseline the regret harness compares learning policies against.
	PolicyFrozen = "frozen"
)

// DefaultUCBConstant is the UCB1 exploration constant c. Engagement
// rates live in [0,1] and arrive hundreds of impressions at a time, so a
// tempered c (vs the textbook 1.0) keeps the bonus from drowning the
// mean after the first feedback batch.
const DefaultUCBConstant = 0.5

// fixedPointOne is the 16.16 fixed-point scale used for State.UCBConstFP.
const fixedPointOne = 1 << 16

// minIndex is the floor for any policy index. core.Request validation
// rejects non-positive CPE overrides, so an index may shrink to one
// fixed-point ulp but never to zero.
const minIndex = 1.0 / fixedPointOne

// Event is one batch of engagement feedback for a single ad: how many
// impressions were served (seed-set exposures evaluated) and how many
// produced a click/engagement. Bucket optionally partitions feedback by
// topic bucket; callers that do not segment pass 0.
type Event struct {
	// Ad is the campaign name the feedback belongs to. Feedback is
	// name-keyed (like the spend ledger), so it survives roster
	// reshuffles and ad churn across epochs.
	Ad string `json:"ad"`
	// Bucket is the topic bucket the impressions were served under.
	Bucket int `json:"bucket,omitempty"`
	// Impressions is the number of serves in this batch (≥ 0).
	Impressions int64 `json:"impressions"`
	// Clicks is the number of engagements observed (0 ≤ Clicks ≤ Impressions).
	Clicks int64 `json:"clicks"`
}

// Cell is one (ad, bucket) counter pair in a State snapshot.
type Cell struct {
	// Ad is the campaign name.
	Ad string `json:"ad"`
	// Bucket is the topic bucket.
	Bucket int `json:"bucket,omitempty"`
	// Impressions is the cumulative impression count for the cell.
	Impressions int64 `json:"impressions"`
	// Clicks is the cumulative click count for the cell.
	Clicks int64 `json:"clicks"`
}

// State is a complete, integer-only estimator snapshot. It is the wire
// format the coordinator broadcasts to shards and the payload
// Snapshot/Restore round-trip exactly: counts and the fixed-point
// exploration constant carry no floats, so two replicas restoring the
// same State produce bit-identical indexes forever after.
type State struct {
	// Policy is the index policy ("ucb", "thompson", or "frozen").
	Policy string `json:"policy"`
	// Seed is the Thompson sampling seed (ignored by other policies).
	Seed uint64 `json:"seed"`
	// UCBConstFP is the UCB exploration constant in 16.16 fixed point.
	UCBConstFP int64 `json:"ucb_const_fp"`
	// Events is the number of feedback events observed.
	Events int64 `json:"events"`
	// Cells holds the per-(ad, bucket) counters sorted by (Ad, Bucket).
	Cells []Cell `json:"cells,omitempty"`
}

// Estimator maintains engagement-rate estimates from feedback events and
// scores ads with a policy index in (0, 1]. Implementations are safe for
// concurrent use.
type Estimator interface {
	// Policy returns the index policy name.
	Policy() string
	// Observe folds one feedback event into the counts. It returns an
	// error (and changes nothing) if the event is malformed.
	Observe(ev Event) error
	// Events returns the number of events observed (monotone).
	Events() int64
	// Impressions returns the ad's cumulative impressions over all buckets.
	Impressions(ad string) int64
	// Clicks returns the ad's cumulative clicks over all buckets.
	Clicks(ad string) int64
	// Mean returns the ad's Laplace-smoothed engagement estimate
	// (clicks+1)/(impressions+2), aggregated over buckets; always in (0, 1).
	Mean(ad string) float64
	// Estimate returns the smoothed engagement estimate for one
	// (ad, bucket) cell; always in (0, 1).
	Estimate(ad string, bucket int) float64
	// Index returns the policy score for the ad in [minIndex, 1]: the
	// optimistic (UCB) or sampled (Thompson) engagement rate, or 1 for
	// an ad with no recorded impressions.
	Index(ad string) float64
	// Exploration returns the optimism in the ad's current index:
	// max(0, Index−Mean). Near 1 means the policy is exploring the ad,
	// near 0 means it is exploiting the learned mean.
	Exploration(ad string) float64
	// EffectiveCPE scales a base CPE by the ad's index.
	EffectiveCPE(ad string, base float64) float64
	// Overrides maps base CPEs to effective CPEs position by position —
	// the slice handed to core.Request.CPEs. Ads without feedback keep
	// their base CPE unchanged.
	Overrides(names []string, base []float64) []float64
	// Snapshot returns the full integer state, cells sorted by (Ad, Bucket).
	Snapshot() State
}

// cellKey identifies one (ad, bucket) counter pair in the table.
type cellKey struct {
	ad     string
	bucket int
}

// counts is the mutable value behind one table cell.
type counts struct {
	imps, clicks int64
}

// table is the single concrete Estimator; the policy only changes how
// Index reads the counts, never how Observe writes them.
type table struct {
	policy string
	seed   uint64
	ucbCFP int64 // 16.16 fixed point
	mu     sync.Mutex
	cells  map[cellKey]*counts
	perAd  map[string]*counts // aggregate over buckets, kept in lockstep
	total  int64              // impressions across all ads (UCB's N)
	events int64
}

// New returns a fresh estimator for the given policy ("ucb", "thompson",
// or "frozen"). The seed drives Thompson sampling and is ignored by the
// other policies (but still carried in snapshots so restores are exact).
func New(policy string, seed uint64) (Estimator, error) {
	switch policy {
	case PolicyUCB, PolicyThompson, PolicyFrozen:
	default:
		return nil, fmt.Errorf("bandit: unknown policy %q", policy)
	}
	return &table{
		policy: policy,
		seed:   seed,
		ucbCFP: int64(math.Round(DefaultUCBConstant * fixedPointOne)),
		cells:  map[cellKey]*counts{},
		perAd:  map[string]*counts{},
	}, nil
}

// NewUCB returns a UCB1 estimator with the default exploration constant.
func NewUCB(seed uint64) Estimator {
	e, _ := New(PolicyUCB, seed)
	return e
}

// NewThompson returns a seeded Thompson sampling estimator.
func NewThompson(seed uint64) Estimator {
	e, _ := New(PolicyThompson, seed)
	return e
}

// NewFrozen returns the never-update baseline estimator: Observe is
// accepted but the index stays 1 for every ad.
func NewFrozen() Estimator {
	e, _ := New(PolicyFrozen, 0)
	return e
}

// Restore rebuilds an estimator from a snapshot. The result is
// indistinguishable from the estimator that produced the State: counts,
// event total, seed, and fixed-point constant all carry over exactly.
func Restore(st State) (Estimator, error) {
	e, err := New(st.Policy, st.Seed)
	if err != nil {
		return nil, err
	}
	t := e.(*table)
	if st.UCBConstFP != 0 {
		t.ucbCFP = st.UCBConstFP
	}
	if st.UCBConstFP < 0 {
		return nil, fmt.Errorf("bandit: negative UCB constant %d", st.UCBConstFP)
	}
	if st.Events < 0 {
		return nil, fmt.Errorf("bandit: negative event count %d", st.Events)
	}
	t.events = st.Events
	for _, c := range st.Cells {
		if c.Ad == "" || c.Bucket < 0 || c.Clicks < 0 || c.Impressions < 0 || c.Clicks > c.Impressions {
			return nil, fmt.Errorf("bandit: invalid snapshot cell %+v", c)
		}
		key := cellKey{ad: c.Ad, bucket: c.Bucket}
		if _, dup := t.cells[key]; dup {
			return nil, fmt.Errorf("bandit: duplicate snapshot cell %s/%d", c.Ad, c.Bucket)
		}
		t.cells[key] = &counts{imps: c.Impressions, clicks: c.Clicks}
		t.bumpAd(c.Ad, c.Impressions, c.Clicks)
	}
	return t, nil
}

// bumpAd folds a delta into the per-ad aggregate and the global total.
// Callers hold t.mu (or own t exclusively during Restore).
func (t *table) bumpAd(ad string, imps, clicks int64) {
	agg := t.perAd[ad]
	if agg == nil {
		agg = &counts{}
		t.perAd[ad] = agg
	}
	agg.imps += imps
	agg.clicks += clicks
	t.total += imps
}

// Policy returns the index policy name.
func (t *table) Policy() string { return t.policy }

// Observe folds one feedback event into the counts.
func (t *table) Observe(ev Event) error {
	if ev.Ad == "" {
		return fmt.Errorf("bandit: event without ad name")
	}
	if ev.Bucket < 0 {
		return fmt.Errorf("bandit: negative bucket %d for ad %q", ev.Bucket, ev.Ad)
	}
	if ev.Impressions < 0 || ev.Clicks < 0 {
		return fmt.Errorf("bandit: negative counts for ad %q", ev.Ad)
	}
	if ev.Clicks > ev.Impressions {
		return fmt.Errorf("bandit: ad %q has %d clicks for %d impressions", ev.Ad, ev.Clicks, ev.Impressions)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := cellKey{ad: ev.Ad, bucket: ev.Bucket}
	c := t.cells[key]
	if c == nil {
		c = &counts{}
		t.cells[key] = c
	}
	c.imps += ev.Impressions
	c.clicks += ev.Clicks
	t.bumpAd(ev.Ad, ev.Impressions, ev.Clicks)
	t.events++
	return nil
}

// Events returns the number of events observed.
func (t *table) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Impressions returns the ad's cumulative impressions over all buckets.
func (t *table) Impressions(ad string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if agg := t.perAd[ad]; agg != nil {
		return agg.imps
	}
	return 0
}

// Clicks returns the ad's cumulative clicks over all buckets.
func (t *table) Clicks(ad string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if agg := t.perAd[ad]; agg != nil {
		return agg.clicks
	}
	return 0
}

// smoothed is the Laplace-smoothed mean (clicks+1)/(imps+2): defined for
// zero counts, always strictly inside (0, 1).
func smoothed(c counts) float64 {
	return float64(c.clicks+1) / float64(c.imps+2)
}

// Mean returns the ad's smoothed engagement estimate over all buckets.
func (t *table) Mean(ad string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return smoothed(t.adCounts(ad))
}

// Estimate returns the smoothed engagement estimate for one cell.
func (t *table) Estimate(ad string, bucket int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.cells[cellKey{ad: ad, bucket: bucket}]; c != nil {
		return smoothed(*c)
	}
	return smoothed(counts{})
}

// adCounts reads the per-ad aggregate under t.mu.
func (t *table) adCounts(ad string) counts {
	if agg := t.perAd[ad]; agg != nil {
		return *agg
	}
	return counts{}
}

// Index returns the policy score for the ad.
func (t *table) Index(ad string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.indexLocked(ad)
}

func (t *table) indexLocked(ad string) float64 {
	if t.policy == PolicyFrozen {
		return 1
	}
	agg := t.adCounts(ad)
	if agg.imps == 0 {
		// Optimism under uncertainty: an untried ad keeps its base CPE.
		return 1
	}
	switch t.policy {
	case PolicyUCB:
		mean := smoothed(agg)
		c := float64(t.ucbCFP) / fixedPointOne
		bonus := c * math.Sqrt(2*math.Log(1+float64(t.total))/float64(agg.imps))
		return clampIndex(mean + bonus)
	case PolicyThompson:
		// Normal approximation of the Beta(clicks+1, imps−clicks+1)
		// posterior, sampled through a uniform that is a pure function
		// of (seed, ad, counts) — no RNG state survives between draws,
		// so snapshots restore exactly and replicas agree.
		mu := smoothed(agg)
		sigma := math.Sqrt(mu * (1 - mu) / float64(agg.imps+3))
		u := t.posteriorUniform(ad, agg)
		return clampIndex(mu + sigma*invNormCDF(u))
	default:
		return 1
	}
}

// posteriorUniform derives the Thompson draw's uniform deterministically
// from the estimator seed, the ad name, and the current counts.
func (t *table) posteriorUniform(ad string, agg counts) float64 {
	mix := uint64(agg.imps)*0x9e3779b97f4a7c15 ^ uint64(agg.clicks)
	u := xrand.New(t.seed).Split(fnv64(ad)).Split(mix).Float64()
	// Keep the inverse CDF off its poles.
	const tiny = 1e-12
	return math.Min(math.Max(u, tiny), 1-tiny)
}

// clampIndex pins an index into [minIndex, 1].
func clampIndex(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < minIndex {
		return minIndex
	}
	return v
}

// Exploration returns max(0, Index−Mean) for the ad.
func (t *table) Exploration(ad string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.indexLocked(ad) - smoothed(t.adCounts(ad))
	if e < 0 {
		return 0
	}
	return e
}

// EffectiveCPE scales a base CPE by the ad's index.
func (t *table) EffectiveCPE(ad string, base float64) float64 {
	return base * t.Index(ad)
}

// Overrides maps base CPEs to effective CPEs position by position.
func (t *table) Overrides(names []string, base []float64) []float64 {
	if len(names) != len(base) {
		panic(fmt.Sprintf("bandit: %d names for %d base CPEs", len(names), len(base)))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(names))
	for i, name := range names {
		out[i] = base[i] * t.indexLocked(name)
	}
	return out
}

// Snapshot returns the full integer state, cells sorted by (Ad, Bucket).
func (t *table) Snapshot() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := State{
		Policy:     t.policy,
		Seed:       t.seed,
		UCBConstFP: t.ucbCFP,
		Events:     t.events,
	}
	if len(t.cells) > 0 {
		st.Cells = make([]Cell, 0, len(t.cells))
		for key, c := range t.cells {
			st.Cells = append(st.Cells, Cell{Ad: key.ad, Bucket: key.bucket, Impressions: c.imps, Clicks: c.clicks})
		}
		sort.Slice(st.Cells, func(i, j int) bool {
			if st.Cells[i].Ad != st.Cells[j].Ad {
				return st.Cells[i].Ad < st.Cells[j].Ad
			}
			return st.Cells[i].Bucket < st.Cells[j].Bucket
		})
	}
	return st
}

// fnv64 is FNV-1a over the ad name: a stable, allocation-free name hash
// for deriving per-ad random streams.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// invNormCDF is Acklam's rational approximation to the inverse standard
// normal CDF (relative error < 1.15e-9 over (0,1)) — enough accuracy for
// posterior sampling and fully portable: plain arithmetic plus
// math.Sqrt/math.Log, which Go evaluates identically on every platform.
func invNormCDF(p float64) float64 {
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((cA0*q+cA1)*q+cA2)*q+cA3)*q+cA4)*q + cA5) /
			((((cB0*q+cB1)*q+cB2)*q+cB3)*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((cA0*q+cA1)*q+cA2)*q+cA3)*q+cA4)*q + cA5) /
			((((cB0*q+cB1)*q+cB2)*q+cB3)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((cC0*r+cC1)*r+cC2)*r+cC3)*r+cC4)*r + cC5) * q /
			(((((cD0*r+cD1)*r+cD2)*r+cD3)*r+cD4)*r + 1)
	}
}

// Acklam's coefficients: cC/cD drive the central region, cA/cB the tails.
const (
	cC0 = -3.969683028665376e+01
	cC1 = 2.209460984245205e+02
	cC2 = -2.759285104469687e+02
	cC3 = 1.383577518672690e+02
	cC4 = -3.066479806614716e+01
	cC5 = 2.506628277459239e+00

	cD0 = -5.447609879822406e+01
	cD1 = 1.615858368580409e+02
	cD2 = -1.556989798598866e+02
	cD3 = 6.680131188771972e+01
	cD4 = -1.328068155288572e+01

	cA0 = -7.784894002430293e-03
	cA1 = -3.223964580411365e-01
	cA2 = -2.400758277161838e+00
	cA3 = -2.549732539343734e+00
	cA4 = 4.374664141464968e+00
	cA5 = 2.938163982698783e+00

	cB0 = 7.784695709041462e-03
	cB1 = 3.224671290700398e-01
	cB2 = 2.445134137142996e+00
	cB3 = 3.754408661907416e+00
)
