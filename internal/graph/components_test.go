package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestWeakComponentsBasic(t *testing.T) {
	// Two islands: {0,1,2} chained, {3,4} chained, 5 isolated.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	labels, count := WeakComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first island split")
	}
	if labels[3] != labels[4] {
		t.Error("second island split")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("isolated node merged")
	}
}

func TestWeakComponentsDirectionBlind(t *testing.T) {
	// 0->1<-2: weakly one component despite no directed path 0..2.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	if _, count := WeakComponents(g); count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestGiantComponentFrac(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if f := GiantComponentFrac(g); f != 0.6 {
		t.Fatalf("giant frac %v, want 0.6", f)
	}
	if f := GiantComponentFrac(NewBuilder(0).MustBuild()); f != 0 {
		t.Fatalf("empty graph frac %v", f)
	}
}

func TestStrongComponentsCycleAndTail(t *testing.T) {
	// 0->1->2->0 cycle plus tail 2->3->4.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	labels, count := StrongComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (cycle + two singletons)", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("cycle split")
	}
	if labels[3] == labels[0] || labels[4] == labels[3] {
		t.Error("tail merged")
	}
	// Tarjan emits SCCs in reverse topological order: the sink (node 4)
	// gets the smallest label.
	if labels[4] >= labels[3] || labels[3] >= labels[0] {
		t.Errorf("labels not reverse-topological: %v", labels)
	}
}

func TestStrongComponentsDAG(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if _, count := StrongComponents(g); count != 4 {
		t.Fatalf("DAG should have n singleton SCCs, got %d", count)
	}
}

// TestStrongComponentsEquivalence property-checks Tarjan against the
// definition: u and v share an SCC iff both reach each other.
func TestStrongComponentsEquivalence(t *testing.T) {
	reaches := func(g *Graph, from, to int32) bool {
		seen := make([]bool, g.N())
		stack := []int32{from}
		seen[from] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == to {
				return true
			}
			targets, _ := g.OutEdges(u)
			for _, v := range targets {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return false
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.IntN(8)
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			u, v := int32(r.IntN(n)), int32(r.IntN(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		labels, _ := StrongComponents(g)
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				same := labels[u] == labels[v]
				mutual := reaches(g, u, v) && reaches(g, v, u)
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStrongComponentsDeepChain(t *testing.T) {
	// A 200k-long chain would blow a recursive Tarjan; the iterative one
	// must handle it.
	const n = 200000
	b := NewBuilderHint(n, n-1)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.MustBuild()
	if _, count := StrongComponents(g); count != n {
		t.Fatalf("chain SCC count %d, want %d", count, n)
	}
	if _, count := WeakComponents(g); count != 1 {
		t.Fatalf("chain weak count %d, want 1", count)
	}
}
