package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list: a header line
// "# nodes <n> edges <m>" followed by one "u v" pair per line in canonical
// EdgeID order. The format round-trips exactly through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := int32(0); u < g.n; u++ {
		targets, _ := g.OutEdges(u)
		for _, v := range targets {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the header are ignored, so SNAP-style edge lists with
// comment preambles also load (node count is then inferred from the maximum
// endpoint).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	var maxNode int32 = -1
	var pending []edge
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n int
			var m int64
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &n, &m); err == nil {
				b = NewBuilderHint(n, int(m))
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u64, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v64, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		u, v := int32(u64), int32(v64)
		if u > maxNode {
			maxNode = u
		}
		if v > maxNode {
			maxNode = v
		}
		if b != nil {
			b.AddEdge(u, v)
		} else {
			pending = append(pending, edge{u, v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		b = NewBuilderHint(int(maxNode)+1, len(pending))
		for _, e := range pending {
			b.AddEdge(e.u, e.v)
		}
	}
	return b.Build()
}
