package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// buildFig1 constructs the toy graph of the paper's Figure 1:
// v1->v3, v2->v3, v3->v4, v3->v5, v4->v6, v5->v6 (0-indexed here).
func buildFig1(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBasic(t *testing.T) {
	g := buildFig1(t)
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("N=%d M=%d, want 6/6", g.N(), g.M())
	}
	if d := g.OutDegree(2); d != 2 {
		t.Fatalf("OutDegree(v3)=%d, want 2", d)
	}
	if d := g.InDegree(2); d != 2 {
		t.Fatalf("InDegree(v3)=%d, want 2", d)
	}
	if d := g.InDegree(0); d != 0 {
		t.Fatalf("InDegree(v1)=%d, want 0", d)
	}
	targets, first := g.OutEdges(2)
	if len(targets) != 2 || targets[0] != 3 || targets[1] != 4 {
		t.Fatalf("OutEdges(v3) = %v", targets)
	}
	if first != 2 {
		t.Fatalf("first EdgeID of v3 = %d, want 2", first)
	}
	sources, eids := g.InEdges(5)
	if len(sources) != 2 {
		t.Fatalf("InEdges(v6) = %v", sources)
	}
	for i, s := range sources {
		u, v := g.EdgeEndpoints(eids[i])
		if u != s || v != 5 {
			t.Fatalf("inEID mismatch: edge %d has endpoints (%d,%d), want (%d,5)", eids[i], u, v, s)
		}
	}
}

func TestFindEdge(t *testing.T) {
	g := buildFig1(t)
	if eid, ok := g.FindEdge(2, 4); !ok || eid != 3 {
		t.Fatalf("FindEdge(2,4) = %d,%v", eid, ok)
	}
	if _, ok := g.FindEdge(4, 2); ok {
		t.Fatal("FindEdge(4,2) should not exist")
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Fatal("HasEdge direction confusion")
	}
}

func TestBuildRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	b2 := NewBuilder(3)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestBuildDeduplicates(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	g := b.MustBuild()
	if g.M() != 1 {
		t.Fatalf("M=%d after dedup, want 1", g.M())
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2)
	b.AddUndirected(0, 1)
	g := b.MustBuild()
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("AddUndirected did not create both directions")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph not empty")
	}
	g2 := NewBuilder(5).MustBuild()
	if g2.N() != 5 || g2.M() != 0 {
		t.Fatal("edgeless graph wrong")
	}
	for u := int32(0); u < 5; u++ {
		if g2.OutDegree(u) != 0 || g2.InDegree(u) != 0 {
			t.Fatal("edgeless graph has degrees")
		}
	}
}

func TestEdgeEndpointsPanics(t *testing.T) {
	g := buildFig1(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range EdgeID")
		}
	}()
	g.EdgeEndpoints(99)
}

func TestStats(t *testing.T) {
	g := buildFig1(t)
	st := g.Stats()
	if st.Nodes != 6 || st.Edges != 6 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxOutDeg != 2 || st.MaxInDeg != 2 {
		t.Fatalf("degrees %+v", st)
	}
	if st.AvgOutDeg != 1.0 {
		t.Fatalf("avg out-degree %v", st.AvgOutDeg)
	}
}

// randomGraph builds a random simple digraph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	r := xrand.New(seed)
	b := NewBuilderHint(n, m)
	for i := 0; i < m; i++ {
		u := int32(r.IntN(n))
		v := int32(r.IntN(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// TestInOutConsistency checks, on random graphs, that the in-CSR is exactly
// the transpose of the out-CSR and that inEID back-references are correct.
func TestInOutConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 30, 120)
		// Every out-edge appears exactly once as an in-edge with matching EdgeID.
		type pair struct{ u, v int32 }
		outSet := map[pair]EdgeID{}
		for u := int32(0); u < int32(g.N()); u++ {
			targets, first := g.OutEdges(u)
			for i, v := range targets {
				outSet[pair{u, v}] = first + int64(i)
			}
		}
		count := 0
		for v := int32(0); v < int32(g.N()); v++ {
			sources, eids := g.InEdges(v)
			for i, u := range sources {
				want, ok := outSet[pair{u, v}]
				if !ok || want != eids[i] {
					return false
				}
				count++
			}
		}
		return int64(count) == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeIDsSortedByEndpoint(t *testing.T) {
	g := randomGraph(99, 50, 400)
	var prevU, prevV int32 = -1, -1
	for e := int64(0); e < g.M(); e++ {
		u, v := g.EdgeEndpoints(e)
		if u < prevU || (u == prevU && v <= prevV) {
			t.Fatalf("EdgeIDs not sorted at %d: (%d,%d) after (%d,%d)", e, u, v, prevU, prevV)
		}
		prevU, prevV = u, v
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(7, 40, 200)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round-trip size mismatch: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for e := int64(0); e < g.M(); e++ {
		u1, v1 := g.EdgeEndpoints(e)
		u2, v2 := g2.EdgeEndpoints(e)
		if u1 != u2 || v1 != v2 {
			t.Fatalf("edge %d differs after round trip", e)
		}
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	in := "# some SNAP-style comment\n0 1\n1 2\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3/3", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("expected error for short line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("expected error for non-numeric line")
	}
}
