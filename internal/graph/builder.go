package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates directed edges and produces an immutable Graph.
// Duplicate edges are coalesced; self-loops are rejected at Build time
// (the propagation models give them no semantics).
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v int32 }

// NewBuilder creates a builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// NewBuilderHint is NewBuilder with a capacity hint for the edge list.
func NewBuilderHint(n int, edgeHint int) *Builder {
	b := NewBuilder(n)
	b.edges = make([]edge, 0, edgeHint)
	return b
}

// N returns the node count the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge records the directed edge u->v ("v follows u"). Out-of-range
// endpoints cause Build to fail.
func (b *Builder) AddEdge(u, v NodeID) {
	b.edges = append(b.edges, edge{u, v})
}

// AddUndirected records both u->v and v->u (used by the DBLP analogue,
// where the paper directs all co-authorship edges in both directions).
func (b *Builder) AddUndirected(u, v NodeID) {
	b.AddEdge(u, v)
	b.AddEdge(v, u)
}

// Build validates, deduplicates, sorts, and freezes the graph.
func (b *Builder) Build() (*Graph, error) {
	n := int32(b.n)
	for _, e := range b.edges {
		if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.u, e.v, n)
		}
		if e.u == e.v {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.u)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	// Deduplicate in place.
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	m := int64(len(dedup))

	g := &Graph{
		n:        n,
		m:        m,
		outStart: make([]int64, n+1),
		outTo:    make([]int32, m),
		inStart:  make([]int64, n+1),
		inFrom:   make([]int32, m),
		inEID:    make([]int64, m),
	}
	// Out CSR: edges are already sorted by (u, v), so EdgeID = index.
	for _, e := range dedup {
		g.outStart[e.u+1]++
	}
	for i := int32(0); i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
	}
	for j, e := range dedup {
		g.outTo[j] = e.v
	}
	// In CSR with EdgeID back-references.
	for _, e := range dedup {
		g.inStart[e.v+1]++
	}
	for i := int32(0); i < n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	cursor := make([]int64, n)
	copy(cursor, g.inStart[:n])
	for j, e := range dedup {
		k := cursor[e.v]
		g.inFrom[k] = e.u
		g.inEID[k] = int64(j)
		cursor[e.v]++
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are constructed correctly by design.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
