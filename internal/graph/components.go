package graph

// WeakComponents labels the weakly-connected components of the graph
// (edges treated as undirected) and returns the label vector plus the
// component count. Labels are dense in [0, count) in order of first
// appearance. Dataset generators use this to verify that analogues are not
// shattered into fragments, and the Table 1 extended statistics report the
// giant component's share.
func WeakComponents(g *Graph) (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := int32(0); start < int32(n); start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[start] = id
		queue = queue[:0]
		queue = append(queue, start)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			targets, _ := g.OutEdges(u)
			for _, v := range targets {
				if labels[v] < 0 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
			sources, _ := g.InEdges(u)
			for _, v := range sources {
				if labels[v] < 0 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return labels, count
}

// GiantComponentFrac returns the fraction of nodes in the largest weakly
// connected component (0 for an empty graph).
func GiantComponentFrac(g *Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	labels, count := WeakComponents(g)
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(g.N())
}

// StrongComponents labels the strongly-connected components using an
// iterative Tarjan algorithm (explicit stack — safe for graphs far deeper
// than Go's goroutine stack would allow recursively). Labels are dense in
// [0, count); within the condensation they follow reverse topological
// order, a property of Tarjan's algorithm that tests rely on.
func StrongComponents(g *Graph) (labels []int32, count int) {
	n := g.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	labels = make([]int32, n)
	for i := range index {
		index[i] = unvisited
		labels[i] = -1
	}
	var next int32
	var stack []int32 // Tarjan's SCC stack

	// Explicit DFS frames: node plus position within its out-edge list.
	type frame struct {
		u   int32
		pos int
	}
	var dfs []frame
	for root := int32(0); root < int32(n); root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{u: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			targets, _ := g.OutEdges(f.u)
			if f.pos < len(targets) {
				v := targets[f.pos]
				f.pos++
				if index[v] == unvisited {
					index[v] = next
					low[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					dfs = append(dfs, frame{u: v})
				} else if onStack[v] && index[v] < low[f.u] {
					low[f.u] = index[v]
				}
				continue
			}
			// All children explored: close the frame.
			u := f.u
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[u] < low[p.u] {
					low[p.u] = low[u]
				}
			}
			if low[u] == index[u] {
				id := int32(count)
				count++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					labels[w] = id
					if w == u {
						break
					}
				}
			}
		}
	}
	return labels, count
}
