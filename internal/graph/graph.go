// Package graph provides the directed social-graph substrate shared by every
// model in this repository.
//
// Following the paper's convention, an arc (u, v) means "v follows u": v sees
// u's posts, so influence flows along the arc from u to v. Forward diffusion
// (Monte Carlo simulation of the TIC-CTP model) traverses out-edges;
// reverse-reachable-set sampling traverses in-edges.
//
// The graph is stored in compressed sparse row (CSR) form for both
// directions. Each directed edge has a canonical EdgeID — its position in
// the out-edge array — which the topic model uses to attach per-topic
// influence probabilities. The in-edge arrays carry a parallel slice mapping
// each in-edge back to its canonical EdgeID so both traversal directions can
// look up the same probability.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are dense integers in [0, N).
type NodeID = int32

// EdgeID identifies a directed edge; edges are dense integers in [0, M)
// ordered by (source, target).
type EdgeID = int64

// Graph is an immutable directed graph in CSR form.
type Graph struct {
	n int32
	m int64

	// Out-direction CSR. Edge j (EdgeID) goes from the unique u with
	// outStart[u] <= j < outStart[u+1] to outTo[j].
	outStart []int64
	outTo    []int32

	// In-direction CSR. inFrom[k] lists the in-neighbors of the unique v
	// with inStart[v] <= k < inStart[v+1]; inEID[k] is the canonical EdgeID
	// of that edge.
	inStart []int64
	inFrom  []int32
	inEID   []int64
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of directed edges.
func (g *Graph) M() int64 { return g.m }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outStart[u+1] - g.outStart[u])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// OutEdges returns the targets of u's out-edges and the EdgeID of u's first
// out-edge. The i-th returned target corresponds to EdgeID first+i. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) OutEdges(u NodeID) (targets []int32, first EdgeID) {
	s, e := g.outStart[u], g.outStart[u+1]
	return g.outTo[s:e], s
}

// InEdges returns the sources of v's in-edges along with the canonical
// EdgeIDs of those edges. The returned slices alias internal storage and
// must not be modified.
func (g *Graph) InEdges(v NodeID) (sources []int32, eids []int64) {
	s, e := g.inStart[v], g.inStart[v+1]
	return g.inFrom[s:e], g.inEID[s:e]
}

// EdgeEndpoints returns the (source, target) of a canonical edge. It is
// O(log n) (binary search over outStart) and intended for tests and
// diagnostics, not inner loops.
func (g *Graph) EdgeEndpoints(e EdgeID) (NodeID, NodeID) {
	if e < 0 || e >= g.m {
		panic(fmt.Sprintf("graph: EdgeID %d out of range [0,%d)", e, g.m))
	}
	// Find u with outStart[u] <= e < outStart[u+1].
	u := sort.Search(int(g.n), func(i int) bool { return g.outStart[i+1] > e })
	return int32(u), g.outTo[e]
}

// HasEdge reports whether the edge u->v exists. O(log outdeg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.FindEdge(u, v)
	return ok
}

// FindEdge returns the canonical EdgeID of u->v if it exists.
func (g *Graph) FindEdge(u, v NodeID) (EdgeID, bool) {
	s, e := g.outStart[u], g.outStart[u+1]
	row := g.outTo[s:e]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return s + int64(i), true
	}
	return 0, false
}

// Stats summarizes the graph for dataset tables (paper Table 1).
type Stats struct {
	Nodes     int
	Edges     int64
	MaxOutDeg int
	MaxInDeg  int
	AvgOutDeg float64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{Nodes: g.N(), Edges: g.M()}
	for u := int32(0); u < g.n; u++ {
		if d := g.OutDegree(u); d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
		if d := g.InDegree(u); d > st.MaxInDeg {
			st.MaxInDeg = d
		}
	}
	if g.n > 0 {
		st.AvgOutDeg = float64(g.m) / float64(g.n)
	}
	return st
}
