package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Fatal("empty stream not zeroed")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.CI95()-1.96*s.StdErr()) > 1e-15 {
		t.Fatal("CI95 mismatch")
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.IntN(50)
		var s Stream
		var batch []float64
		for i := 0; i < n; i++ {
			v := r.Uniform(-10, 10)
			s.Add(v)
			batch = append(batch, v)
		}
		var mean float64
		for _, v := range batch {
			mean += v
		}
		mean /= float64(n)
		var v2 float64
		for _, v := range batch {
			v2 += (v - mean) * (v - mean)
		}
		v2 /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-v2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.125, 1.5},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P%.3f = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile not 0")
	}
	if Percentile([]float64{7}, 0.3) != 7 {
		t.Error("single-element percentile")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("Summarize mutated its input")
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummaryPercentileOrder(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.IntN(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Uniform(0, 1000)
		}
		s := Summarize(vals)
		return s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 &&
			s.P75 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
