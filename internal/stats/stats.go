// Package stats provides the small statistical toolkit shared by the
// evaluation and experiment layers: streaming moments, summaries with
// percentiles, and normal-approximation confidence intervals for Monte
// Carlo estimates.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates count/mean/variance in one pass (Welford's method),
// numerically stable for the long Monte Carlo averages the evaluator runs.
type Stream struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min and Max return the extremes (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the maximum observation.
func (s *Stream) Max() float64 { return s.max }

// CI95 returns the normal-approximation 95% confidence half-width of the
// mean: 1.96 · stderr. Monte Carlo evaluation reports it alongside revenue
// estimates so regret differences can be judged against sampling noise.
func (s *Stream) CI95() float64 { return 1.96 * s.StdErr() }

// Summary describes a batch of values.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, P25, P50, P75 float64
	P90, P99, Max      float64
}

// Summarize computes a batch summary (the input is not modified).
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64{}, values...)
	sort.Float64s(sorted)
	var st Stream
	for _, v := range sorted {
		st.Add(v)
	}
	return Summary{
		N:      len(sorted),
		Mean:   st.Mean(),
		StdDev: st.StdDev(),
		Min:    sorted[0],
		P25:    Percentile(sorted, 0.25),
		P50:    Percentile(sorted, 0.50),
		P75:    Percentile(sorted, 0.75),
		P90:    Percentile(sorted, 0.90),
		P99:    Percentile(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted slice using
// linear interpolation. It panics on unsorted input being irrelevant — the
// caller owns sorting; on an empty slice it returns 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.Max)
}
