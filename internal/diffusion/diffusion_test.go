package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// fig1Graph builds the toy network of the paper's Figure 1 (0-indexed:
// v1..v6 -> 0..5) with the same edge probabilities for every ad.
func fig1Graph(t testing.TB) (*graph.Graph, []float32) {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2) // v1->v3 0.2
	b.AddEdge(1, 2) // v2->v3 0.2
	b.AddEdge(2, 3) // v3->v4 0.5
	b.AddEdge(2, 4) // v3->v5 0.5
	b.AddEdge(3, 5) // v4->v6 0.1
	b.AddEdge(4, 5) // v5->v6 0.1
	g, err := b.Build()
	if err != nil {
		t.Fatalf("fig1: %v", err)
	}
	// Edge probabilities in canonical (u,v)-sorted EdgeID order.
	probs := []float32{0.2, 0.2, 0.5, 0.5, 0.1, 0.1}
	return g, probs
}

func fig1Sim(t testing.TB, ctp float64) *Simulator {
	g, probs := fig1Graph(t)
	return NewSimulator(g, topic.ItemParams{
		Probs: probs,
		CTPs:  topic.ConstCTP{Nodes: 6, P: ctp},
	})
}

// TestFig1AllocationAExact verifies the exact per-node click probabilities
// for the paper's allocation A (ad a seeded at every node, δ = 0.9).
// The paper's reported numbers (0.9, 0.9, 0.93, 0.95, 0.95, 0.92) use an
// independence approximation at v6; exact possible-world values are
// 0.9, 0.9, 0.93276, 0.946638, 0.946638, 0.9180365 (sum 5.5440725 ≈ "5.55").
func TestFig1AllocationAExact(t *testing.T) {
	sim := fig1Sim(t, 0.9)
	got := ExactActivationProbs(sim, []int32{0, 1, 2, 3, 4, 5})
	want := []float64{0.9, 0.9, 0.93276, 0.946638, 0.946638, 0.9180365}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-6) {
			t.Errorf("node v%d: got %.6f want %.6f", i+1, got[i], want[i])
		}
	}
	spread := ExactSpread(sim, []int32{0, 1, 2, 3, 4, 5})
	if !AlmostEqual(spread, 5.5440725, 1e-6) {
		t.Errorf("allocation A spread = %.6f, want 5.5440725", spread)
	}
	// Paper's rounded figure.
	if !AlmostEqual(spread, 5.55, 0.01) {
		t.Errorf("allocation A spread %.4f not within 0.01 of the paper's 5.55", spread)
	}
}

// TestFig1AllocationBExact verifies the per-ad spreads of allocation B:
// a->{v1,v2}, b->{v3}, c->{v4,v5}, d->{v6} with δ = .9/.8/.7/.6.
func TestFig1AllocationBExact(t *testing.T) {
	cases := []struct {
		name   string
		ctp    float64
		seeds  []int32
		spread float64
	}{
		{"a", 0.9, []int32{0, 1}, 2.487141},
		{"b", 0.8, []int32{2}, 1.678},
		{"c", 0.7, []int32{3, 4}, 1.5351},
		{"d", 0.6, []int32{5}, 0.6},
	}
	var total float64
	for _, tc := range cases {
		sim := fig1Sim(t, tc.ctp)
		got := ExactSpread(sim, tc.seeds)
		if !AlmostEqual(got, tc.spread, 1e-6) {
			t.Errorf("ad %s: spread %.6f, want %.6f", tc.name, got, tc.spread)
		}
		total += got
	}
	// Paper: "The overall number of expected clicks under allocation B is 6.3."
	if !AlmostEqual(total, 6.3, 0.01) {
		t.Errorf("allocation B total clicks %.4f, want ≈6.3", total)
	}
}

func TestMCMatchesExact(t *testing.T) {
	sim := fig1Sim(t, 0.9)
	seeds := []int32{0, 1, 2, 3, 4, 5}
	exact := ExactSpread(sim, seeds)
	mc := sim.SpreadMC(seeds, 200000, xrand.New(1))
	if !AlmostEqual(mc, exact, 0.02) {
		t.Errorf("MC %.4f vs exact %.4f", mc, exact)
	}
}

func TestMCParallelMatchesExact(t *testing.T) {
	sim := fig1Sim(t, 0.8)
	seeds := []int32{0, 1}
	exact := ExactSpread(sim, seeds)
	mc := sim.SpreadMCParallel(seeds, 200000, xrand.New(2))
	if !AlmostEqual(mc, exact, 0.02) {
		t.Errorf("parallel MC %.4f vs exact %.4f", mc, exact)
	}
}

func TestMCParallelDeterministic(t *testing.T) {
	sim := fig1Sim(t, 0.9)
	seeds := []int32{0, 2, 5}
	a := sim.SpreadMCParallel(seeds, 50000, xrand.New(7))
	b := sim.SpreadMCParallel(seeds, 50000, xrand.New(7))
	if a != b {
		t.Errorf("parallel MC not deterministic: %v vs %v", a, b)
	}
}

func TestSpreadEmptySeeds(t *testing.T) {
	sim := fig1Sim(t, 0.9)
	if s := sim.SpreadMC(nil, 100, xrand.New(1)); s != 0 {
		t.Errorf("empty-seed MC spread %v", s)
	}
	if s := ExactSpread(sim, nil); s != 0 {
		t.Errorf("empty-seed exact spread %v", s)
	}
	if s := sim.SpreadMCParallel(nil, 0, xrand.New(1)); s != 0 {
		t.Errorf("zero-run parallel spread %v", s)
	}
}

func TestDuplicateSeedsIgnored(t *testing.T) {
	sim := fig1Sim(t, 1.0)
	a := ExactSpread(sim, []int32{0, 0, 0})
	b := ExactSpread(sim, []int32{0})
	if !AlmostEqual(a, b, 1e-12) {
		t.Errorf("duplicate seeds changed exact spread: %v vs %v", a, b)
	}
	mcA := sim.SpreadMC([]int32{0, 0}, 50000, xrand.New(3))
	mcB := sim.SpreadMC([]int32{0}, 50000, xrand.New(3))
	if !AlmostEqual(mcA, mcB, 0.03) {
		t.Errorf("duplicate seeds changed MC spread: %v vs %v", mcA, mcB)
	}
}

func TestCTPZeroMeansNoSpread(t *testing.T) {
	sim := fig1Sim(t, 0)
	if s := sim.SpreadMC([]int32{0, 1, 2}, 1000, xrand.New(4)); s != 0 {
		t.Errorf("CTP=0 spread %v", s)
	}
	if s := ExactSpread(sim, []int32{0, 1, 2}); s != 0 {
		t.Errorf("CTP=0 exact spread %v", s)
	}
}

func TestICSeedsAlwaysActive(t *testing.T) {
	// Under the IC variant the CTP is ignored and every seed activates.
	sim := fig1Sim(t, 0.0)
	s := sim.SpreadICMC([]int32{5}, 100, xrand.New(5))
	if s != 1 {
		t.Errorf("IC spread of sink seed = %v, want 1", s)
	}
	if e := ExactSpreadIC(sim, []int32{5}); !AlmostEqual(e, 1, 1e-12) {
		t.Errorf("IC exact spread of sink seed = %v", e)
	}
}

// randomTinySim builds a random simulator small enough for exact evaluation.
func randomTinySim(seed uint64) *Simulator {
	r := xrand.New(seed)
	n := 4 + r.IntN(4)
	b := graph.NewBuilder(n)
	edges := 0
	for u := 0; u < n && edges < 12; u++ {
		for v := 0; v < n && edges < 12; v++ {
			if u != v && r.Bernoulli(0.3) {
				b.AddEdge(int32(u), int32(v))
				edges++
			}
		}
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	for e := range probs {
		probs[e] = float32(r.Uniform(0, 1))
	}
	ctps := make([]float32, n)
	for u := range ctps {
		ctps[u] = float32(r.Uniform(0, 1))
	}
	vc, _ := topic.NewVecCTP(ctps)
	return NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: vc})
}

// TestSpreadMonotone checks σ(S) ≤ σ(T) for S ⊆ T on random tiny instances
// (exact evaluation, so this is a hard property, not statistical).
func TestSpreadMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		sim := randomTinySim(seed)
		r := xrand.New(seed ^ 0xabc)
		n := sim.Graph().N()
		var small, big []int32
		for u := 0; u < n; u++ {
			if r.Bernoulli(0.3) {
				small = append(small, int32(u))
			}
		}
		big = append(big, small...)
		extra := int32(r.IntN(n))
		big = append(big, extra)
		return ExactSpread(sim, big) >= ExactSpread(sim, small)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadSubmodular checks σ(S∪{w})−σ(S) ≥ σ(T∪{w})−σ(T) for S ⊆ T.
func TestSpreadSubmodular(t *testing.T) {
	f := func(seed uint64) bool {
		sim := randomTinySim(seed)
		r := xrand.New(seed ^ 0xdef)
		n := sim.Graph().N()
		var s []int32
		for u := 0; u < n; u++ {
			if r.Bernoulli(0.25) {
				s = append(s, int32(u))
			}
		}
		tt := append(append([]int32{}, s...), int32(r.IntN(n)))
		w := int32(r.IntN(n))
		gainS := ExactSpread(sim, append(append([]int32{}, s...), w)) - ExactSpread(sim, s)
		gainT := ExactSpread(sim, append(append([]int32{}, tt...), w)) - ExactSpread(sim, tt)
		return gainS >= gainT-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1EmptySet verifies the exact form of Lemma 1 for the first seed:
// σ({u}) = δ(u)·σ_ic({u}) on random tiny instances.
func TestLemma1EmptySet(t *testing.T) {
	f := func(seed uint64) bool {
		sim := randomTinySim(seed)
		r := xrand.New(seed ^ 0x123)
		u := int32(r.IntN(sim.Graph().N()))
		lhs := ExactTheorem5Marginal(sim, nil, u)
		rhs := ExactSpread(sim, []int32{u})
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1LowerBound verifies the general direction of the Theorem-5
// estimator: δ(u)·[σ_ic(S∪{u})−σ_ic(S)] ≤ σ(S∪{u})−σ(S). See the
// reproduction note on ExactTheorem5Marginal — for |S|≥1 with CTPs<1 the
// δ-scaled IC marginal is a lower bound, exact only in special cases.
func TestLemma1LowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		sim := randomTinySim(seed)
		r := xrand.New(seed ^ 0x456)
		n := sim.Graph().N()
		var s []int32
		for x := 0; x < n; x++ {
			if r.Bernoulli(0.3) {
				s = append(s, int32(x))
			}
		}
		u := int32(r.IntN(n))
		for _, x := range s {
			if x == u {
				return true // Lemma 1 concerns u ∉ S
			}
		}
		su := append(append([]int32{}, s...), u)
		lhs := ExactTheorem5Marginal(sim, s, u)
		rhs := ExactSpread(sim, su) - ExactSpread(sim, s)
		return lhs <= rhs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1ExactWithUnitCTP verifies that with all CTPs = 1 the identity
// is exact for any S (classical Kempe et al. marginal-gain decomposition).
func TestLemma1ExactWithUnitCTP(t *testing.T) {
	f := func(seed uint64) bool {
		base := randomTinySim(seed)
		sim := NewSimulator(base.Graph(), topic.ItemParams{
			Probs: base.Params().Probs,
			CTPs:  topic.ConstCTP{Nodes: base.Graph().N(), P: 1},
		})
		r := xrand.New(seed ^ 0x789)
		n := sim.Graph().N()
		var s []int32
		for x := 0; x < n; x++ {
			if r.Bernoulli(0.3) {
				s = append(s, int32(x))
			}
		}
		u := int32(r.IntN(n))
		for _, x := range s {
			if x == u {
				return true
			}
		}
		su := append(append([]int32{}, s...), u)
		lhs := ExactTheorem5Marginal(sim, s, u)
		rhs := ExactSpread(sim, su) - ExactSpread(sim, s)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExactPanicsOnLargeGraph(t *testing.T) {
	b := graph.NewBuilder(30)
	for i := 0; i < 25; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	sim := NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: 30, P: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >MaxExactEdges edges")
		}
	}()
	ExactSpread(sim, []int32{0})
}

func TestNewSimulatorPanics(t *testing.T) {
	g, probs := fig1Graph(t)
	t.Run("probs", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewSimulator(g, topic.ItemParams{Probs: probs[:2], CTPs: topic.ConstCTP{Nodes: 6, P: 1}})
	})
	t.Run("ctps", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: 4, P: 1}})
	})
}
