// Package diffusion implements the paper's propagation model (§3): the
// Topic-aware Independent Cascade model with Click-Through Probabilities
// (TIC-CTP), reduced per ad to an IC model with mixed edge probabilities
// (Lemma 1 / Eq. 1) plus a per-seed acceptance coin.
//
// Semantics. Given an ad with parameters (Probs, CTPs) and a seed set S:
//
//  1. Every u ∈ S independently clicks (becomes active) w.p. δ(u, i).
//  2. When a node u first becomes active it gets one independent chance to
//     activate each out-neighbor v, succeeding w.p. p^i_{u,v}.
//  3. Propagation stops when no new node activates.
//
// σ_i(S) is the expected number of active nodes (= expected clicks). The
// package provides a parallel Monte Carlo estimator and, for tiny graphs, an
// exact evaluator that enumerates edge possible-worlds — used as ground
// truth in tests and for the paper's Figure 1 gadget.
package diffusion

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// Simulator runs TIC-CTP cascades for one ad over a fixed graph. It is safe
// for concurrent use: all mutable per-cascade state lives in cascadeState
// values owned by individual goroutines.
type Simulator struct {
	g      *graph.Graph
	params topic.ItemParams
}

// NewSimulator creates a simulator for one ad. params.Probs must have one
// entry per edge of g and params.CTPs one entry per node.
func NewSimulator(g *graph.Graph, params topic.ItemParams) *Simulator {
	if int64(len(params.Probs)) != g.M() {
		panic("diffusion: probability vector length != edge count")
	}
	if params.CTPs.N() != g.N() {
		panic("diffusion: CTP length != node count")
	}
	return &Simulator{g: g, params: params}
}

// Graph returns the underlying graph.
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Params returns the ad parameters the simulator was built with.
func (s *Simulator) Params() topic.ItemParams { return s.params }

// cascadeState is reusable scratch for one worker. Activation marks use
// a round counter so the slice is cleared once, not per cascade.
type cascadeState struct {
	mark  []uint32
	round uint32
	queue []int32
}

func newCascadeState(n int) *cascadeState {
	return &cascadeState{mark: make([]uint32, n), queue: make([]int32, 0, 256)}
}

// runOnce executes a single cascade and returns the number of activated
// nodes. seedsOnly controls whether the CTP coin is applied to seeds (true
// in the TIC-CTP model; SpreadIC passes false to get the classical IC model
// where seeds activate deterministically).
func (s *Simulator) runOnce(st *cascadeState, seeds []int32, rng *xrand.Rand, useCTP bool) int {
	st.round++
	if st.round == 0 { // uint32 wrapped: reset marks
		for i := range st.mark {
			st.mark[i] = 0
		}
		st.round = 1
	}
	active := 0
	st.queue = st.queue[:0]
	for _, u := range seeds {
		if st.mark[u] == st.round {
			continue // duplicate seed
		}
		if useCTP && !rng.Bernoulli(s.params.CTPs.At(u)) {
			continue // seed declined to click
		}
		st.mark[u] = st.round
		st.queue = append(st.queue, u)
		active++
	}
	probs := s.params.Probs
	for qi := 0; qi < len(st.queue); qi++ {
		u := st.queue[qi]
		targets, first := s.g.OutEdges(u)
		for i, v := range targets {
			if st.mark[v] == st.round {
				continue
			}
			if rng.Bernoulli32(probs[first+int64(i)]) {
				st.mark[v] = st.round
				st.queue = append(st.queue, v)
				active++
			}
		}
	}
	return active
}

// SpreadMC estimates σ_i(S) with `runs` Monte Carlo cascades using a single
// goroutine. Deterministic given (seed set, rng seed).
func (s *Simulator) SpreadMC(seeds []int32, runs int, rng *xrand.Rand) float64 {
	st := newCascadeState(s.g.N())
	total := 0
	for r := 0; r < runs; r++ {
		total += s.runOnce(st, seeds, rng, true)
	}
	return float64(total) / float64(runs)
}

// SpreadICMC is SpreadMC under the classical IC model (seeds activate with
// probability 1). Used to validate Lemma 1 and the RR-set estimators.
func (s *Simulator) SpreadICMC(seeds []int32, runs int, rng *xrand.Rand) float64 {
	st := newCascadeState(s.g.N())
	total := 0
	for r := 0; r < runs; r++ {
		total += s.runOnce(st, seeds, rng, false)
	}
	return float64(total) / float64(runs)
}

// numChunks fixes the parallel decomposition so results are independent of
// GOMAXPROCS: work is split into this many deterministic chunks, each with
// its own derived RNG stream, and chunk sums are reduced in index order.
const numChunks = 64

// SpreadMCParallel estimates σ_i(S) with `runs` cascades spread across all
// CPUs. The result is deterministic given (seeds, rng seed) and identical to
// running the same chunk decomposition sequentially.
func (s *Simulator) SpreadMCParallel(seeds []int32, runs int, rng *xrand.Rand) float64 {
	return s.spreadParallel(seeds, runs, rng, true)
}

// SpreadICMCParallel is the IC (no seed CTP) variant of SpreadMCParallel.
func (s *Simulator) SpreadICMCParallel(seeds []int32, runs int, rng *xrand.Rand) float64 {
	return s.spreadParallel(seeds, runs, rng, false)
}

func (s *Simulator) spreadParallel(seeds []int32, runs int, rng *xrand.Rand, useCTP bool) float64 {
	mean, _ := s.spreadParallelStats(seeds, runs, rng, useCTP)
	return mean
}

// SpreadMCStats estimates σ_i(S) along with the standard error of the
// estimate (per-cascade sample standard deviation / √runs), letting
// callers report Monte Carlo confidence intervals next to revenues.
func (s *Simulator) SpreadMCStats(seeds []int32, runs int, rng *xrand.Rand) (mean, stderr float64) {
	return s.spreadParallelStats(seeds, runs, rng, true)
}

func (s *Simulator) spreadParallelStats(seeds []int32, runs int, rng *xrand.Rand, useCTP bool) (mean, stderr float64) {
	if runs <= 0 {
		return 0, 0
	}
	chunks := numChunks
	if runs < chunks {
		chunks = runs
	}
	per := runs / chunks
	extra := runs % chunks
	sums := make([]int64, chunks)
	sq := make([]int64, chunks)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	next := make(chan int, chunks)
	for c := 0; c < chunks; c++ {
		next <- c
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newCascadeState(s.g.N())
			for c := range next {
				cr := per
				if c < extra {
					cr++
				}
				crng := rng.Split(uint64(c))
				var sum, sum2 int64
				for r := 0; r < cr; r++ {
					v := int64(s.runOnce(st, seeds, crng, useCTP))
					sum += v
					sum2 += v * v
				}
				sums[c] = sum
				sq[c] = sum2
			}
		}()
	}
	wg.Wait()
	var total, total2 int64
	for c := range sums {
		total += sums[c]
		total2 += sq[c]
	}
	n := float64(runs)
	mean = float64(total) / n
	if runs > 1 {
		variance := (float64(total2) - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / n)
	}
	return mean, stderr
}
