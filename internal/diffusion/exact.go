package diffusion

import (
	"fmt"
	"math"
)

// MaxExactEdges bounds the possible-world enumeration: 2^MaxExactEdges
// worlds are evaluated, so anything above ~20 edges is impractical.
const MaxExactEdges = 20

// ExactActivationProbs computes, by exhaustive possible-world enumeration,
// the probability that each node becomes active (clicks) under the TIC-CTP
// model with seed set S. The paper's proof of Lemma 1 uses exactly this
// semantics: a deterministic world X is drawn by flipping each edge coin;
// within X, node w activates iff some seed u that accepted its CTP coin
// reaches w; since seed coins are independent of edge coins,
//
//	Pr[w active | X] = 1 − Π_{u ∈ S, u→w in X} (1 − δ(u)).
//
// The expected spread σ(S) is the sum of the returned probabilities.
// It panics if the graph has more than MaxExactEdges edges.
func ExactActivationProbs(s *Simulator, seeds []int32) []float64 {
	g := s.g
	m := int(g.M())
	if m > MaxExactEdges {
		panic(fmt.Sprintf("diffusion: exact enumeration needs ≤%d edges, graph has %d", MaxExactEdges, m))
	}
	n := g.N()
	// Deduplicate seeds, preserving first occurrence.
	seen := make(map[int32]bool, len(seeds))
	uniq := make([]int32, 0, len(seeds))
	for _, u := range seeds {
		if !seen[u] {
			seen[u] = true
			uniq = append(uniq, u)
		}
	}

	probs := s.params.Probs
	result := make([]float64, n)
	reach := make([]bool, n)
	stack := make([]int32, 0, n)

	for world := 0; world < (1 << m); world++ {
		// Probability of this edge configuration.
		pw := 1.0
		for e := 0; e < m; e++ {
			pe := float64(probs[e])
			if world&(1<<e) != 0 {
				pw *= pe
			} else {
				pw *= 1 - pe
			}
		}
		if pw == 0 {
			continue
		}
		// For each node, probability that no accepted seed reaches it.
		noSeed := make([]float64, n)
		for i := range noSeed {
			noSeed[i] = 1
		}
		for _, u := range uniq {
			// BFS over live edges from u.
			for i := range reach {
				reach[i] = false
			}
			reach[u] = true
			stack = stack[:0]
			stack = append(stack, u)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				targets, first := g.OutEdges(x)
				for i, v := range targets {
					eid := first + int64(i)
					if world&(1<<uint(eid)) == 0 || reach[v] {
						continue
					}
					reach[v] = true
					stack = append(stack, v)
				}
			}
			du := s.params.CTPs.At(u)
			for w := int32(0); w < int32(n); w++ {
				if reach[w] {
					noSeed[w] *= 1 - du
				}
			}
		}
		for w := 0; w < n; w++ {
			result[w] += pw * (1 - noSeed[w])
		}
	}
	return result
}

// ExactSpread returns σ(S) by exhaustive enumeration (sum of
// ExactActivationProbs). Ground truth for tests on tiny graphs.
func ExactSpread(s *Simulator, seeds []int32) float64 {
	var sum float64
	for _, p := range ExactActivationProbs(s, seeds) {
		sum += p
	}
	return sum
}

// ExactSpreadIC returns the classical-IC exact spread (all seed CTPs forced
// to 1), used to validate Lemma 1's δ-scaling of marginal gains.
func ExactSpreadIC(s *Simulator, seeds []int32) float64 {
	ic := &Simulator{g: s.g, params: s.params}
	ic.params.CTPs = ctpOne{n: s.g.N()}
	return ExactSpread(ic, seeds)
}

type ctpOne struct{ n int }

func (c ctpOne) At(int32) float64 { return 1 }
func (c ctpOne) N() int           { return c.n }

// ExactTheorem5Marginal computes, by possible-world enumeration, the
// quantity targeted by the paper's Lemma 1 / Theorem 5 estimator:
//
//	δ(u) · Σ_X Pr[X] · |{w : u→w in X ∧ ¬(S→w in X)}|
//
// i.e. the classical-IC marginal gain of u w.r.t. S, scaled by u's CTP.
//
// Reproduction note: for |S| ≥ 1 with CTPs < 1 this is a *lower bound* on
// the true TIC-CTP marginal σ(S∪{u}) − σ(S), not an exact identity — a
// seed s ∈ S that declines its own CTP coin stops blocking u's coverage,
// which adds O(δ_S · overlap) of extra marginal the estimator does not see.
// The gap vanishes when S = ∅, when CTPs are 1, or when reach sets are
// disjoint; at the paper's 1–3% CTPs it is negligible, which is why TIRM's
// δ-scaled RR-set estimator works. Tests verify both the S=∅ equality and
// the general lower-bound direction.
func ExactTheorem5Marginal(s *Simulator, seeds []int32, u int32) float64 {
	g := s.g
	m := int(g.M())
	if m > MaxExactEdges {
		panic(fmt.Sprintf("diffusion: exact enumeration needs ≤%d edges, graph has %d", MaxExactEdges, m))
	}
	n := g.N()
	probs := s.params.Probs
	reach := make([]bool, n)
	reachS := make([]bool, n)
	stack := make([]int32, 0, n)

	bfs := func(world int, from []int32, out []bool) {
		for i := range out {
			out[i] = false
		}
		stack = stack[:0]
		for _, x := range from {
			if !out[x] {
				out[x] = true
				stack = append(stack, x)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			targets, first := g.OutEdges(x)
			for i, v := range targets {
				eid := first + int64(i)
				if world&(1<<uint(eid)) == 0 || out[v] {
					continue
				}
				out[v] = true
				stack = append(stack, v)
			}
		}
	}

	var total float64
	for world := 0; world < (1 << m); world++ {
		pw := 1.0
		for e := 0; e < m; e++ {
			pe := float64(probs[e])
			if world&(1<<e) != 0 {
				pw *= pe
			} else {
				pw *= 1 - pe
			}
		}
		if pw == 0 {
			continue
		}
		bfs(world, []int32{u}, reach)
		bfs(world, seeds, reachS)
		cnt := 0
		for w := 0; w < n; w++ {
			if reach[w] && !reachS[w] {
				cnt++
			}
		}
		total += pw * float64(cnt)
	}
	return s.params.CTPs.At(u) * total
}

// AlmostEqual reports |a-b| <= tol, a helper shared by diffusion tests.
func AlmostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
