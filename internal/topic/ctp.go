package topic

import "fmt"

// CTP is a per-user click-through-probability vector δ(·, i) for one ad:
// the probability a user clicks the promoted post absent any social proof.
type CTP interface {
	// At returns δ(u, i) for user u.
	At(u int32) float64
	// N returns the number of users covered.
	N() int
}

// ConstCTP is a CTP that is identical for every user (the scalability
// experiments set all CTPs to 1).
type ConstCTP struct {
	Nodes int
	P     float64
}

// At implements CTP.
func (c ConstCTP) At(int32) float64 { return c.P }

// N implements CTP.
func (c ConstCTP) N() int { return c.Nodes }

// VecCTP is a dense per-user CTP vector.
type VecCTP []float32

// At implements CTP.
func (v VecCTP) At(u int32) float64 { return float64(v[u]) }

// N implements CTP.
func (v VecCTP) N() int { return len(v) }

// NewVecCTP validates that every probability is in [0,1] and returns the
// vector (taking ownership of the slice).
func NewVecCTP(p []float32) (VecCTP, error) {
	for u, v := range p {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("topic: CTP[%d] = %v out of [0,1]", u, v)
		}
	}
	return VecCTP(p), nil
}

// ItemParams bundles everything the propagation and sampling layers need to
// know about one ad: its materialized edge probabilities (Mix of its γ_i)
// and its CTP vector. It is the runtime form of "ad i" for the substrate
// packages; monetary attributes (budget, CPE) live one level up in core.
type ItemParams struct {
	// Probs[e] is p^i for canonical EdgeID e.
	Probs []float32
	// CTPs gives δ(u, i) per user.
	CTPs CTP
}
