// Package topic implements the paper's topic model (§3): a K-state latent
// space over which ads are described by topic distributions γ_i, edges carry
// per-topic influence probabilities p^z_{u,v}, and users carry per-ad
// click-through probabilities δ(u,i).
//
// For a fixed ad i the TIC model reduces to an independent-cascade model
// whose edge probability is the γ_i-weighted average of the per-topic edge
// probabilities (Eq. 1):
//
//	p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}
//
// Mix materializes that reduction: it produces one float32 per canonical
// EdgeID, which the diffusion and RR-set samplers consume directly.
package topic

import (
	"fmt"
	"math"
)

// Dist is a probability distribution over K topics (the paper's γ_i).
type Dist []float64

// NewDist validates and returns a topic distribution. The entries must be
// non-negative and sum to 1 within a small tolerance.
func NewDist(weights []float64) (Dist, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("topic: empty distribution")
	}
	var sum float64
	for z, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("topic: weight %d is %v", z, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("topic: weights sum to %v, want 1", sum)
	}
	d := make(Dist, len(weights))
	copy(d, weights)
	return d, nil
}

// Concentrated returns the paper's experimental ad distribution: mass `main`
// on topic z and the remaining (1-main) spread evenly over the other K-1
// topics. With K=10 and main=0.91 this reproduces "mass 0.91 in the i-th
// topic, and 0.01 in all others".
func Concentrated(k, z int, main float64) Dist {
	if k <= 0 || z < 0 || z >= k {
		panic(fmt.Sprintf("topic: Concentrated(%d,%d)", k, z))
	}
	d := make(Dist, k)
	if k == 1 {
		d[0] = 1
		return d
	}
	rest := (1 - main) / float64(k-1)
	for i := range d {
		d[i] = rest
	}
	d[z] = main
	return d
}

// Uniform returns the uniform distribution over k topics.
func Uniform(k int) Dist {
	d := make(Dist, k)
	for i := range d {
		d[i] = 1 / float64(k)
	}
	return d
}

// K returns the number of topics.
func (d Dist) K() int { return len(d) }

// Model stores the per-topic influence probabilities for every edge of a
// graph, topic-major: probs[z][e] is p^z for canonical EdgeID e.
type Model struct {
	k     int
	m     int64
	probs [][]float32
}

// NewModel creates a model for k topics over a graph with m edges. All
// probabilities start at zero.
func NewModel(k int, m int64) *Model {
	if k <= 0 {
		panic("topic: model needs k >= 1")
	}
	probs := make([][]float32, k)
	for z := range probs {
		probs[z] = make([]float32, m)
	}
	return &Model{k: k, m: m, probs: probs}
}

// NewSharedModel builds a K=1 model directly from a single probability
// vector (used for weighted-cascade scalability datasets, where every ad
// sees the same probabilities). The slice is taken over, not copied.
func NewSharedModel(probs []float32) *Model {
	return &Model{k: 1, m: int64(len(probs)), probs: [][]float32{probs}}
}

// K returns the number of topics.
func (mo *Model) K() int { return mo.k }

// M returns the number of edges the model covers.
func (mo *Model) M() int64 { return mo.m }

// Set assigns p^z_e. It panics on out-of-range topic/edge or p outside [0,1].
func (mo *Model) Set(z int, e int64, p float32) {
	if p < 0 || p > 1 || (math.IsNaN(float64(p))) {
		panic(fmt.Sprintf("topic: probability %v out of [0,1]", p))
	}
	mo.probs[z][e] = p
}

// At returns p^z_e.
func (mo *Model) At(z int, e int64) float32 { return mo.probs[z][e] }

// Topic returns the full probability vector of topic z. The returned slice
// aliases internal storage and must not be modified.
func (mo *Model) Topic(z int) []float32 { return mo.probs[z] }

// Mix materializes the ad-specific edge probabilities p^i_e = Σ_z γ^z p^z_e
// (Eq. 1). The result has one entry per canonical EdgeID.
func (mo *Model) Mix(gamma Dist) ([]float32, error) {
	if gamma.K() != mo.k {
		return nil, fmt.Errorf("topic: distribution has %d topics, model has %d", gamma.K(), mo.k)
	}
	out := make([]float32, mo.m)
	if mo.k == 1 {
		copy(out, mo.probs[0])
		return out, nil
	}
	for z, gz := range gamma {
		if gz == 0 {
			continue
		}
		pz := mo.probs[z]
		g := float32(gz)
		for e := range out {
			out[e] += g * pz[e]
		}
	}
	// Guard against accumulated float error pushing past 1.
	for e, p := range out {
		if p > 1 {
			out[e] = 1
		}
	}
	return out, nil
}

// MustMix is Mix that panics on error.
func (mo *Model) MustMix(gamma Dist) []float32 {
	p, err := mo.Mix(gamma)
	if err != nil {
		panic(err)
	}
	return p
}
