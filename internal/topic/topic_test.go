package topic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewDistValid(t *testing.T) {
	d, err := NewDist([]float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	if d.K() != 3 {
		t.Fatalf("K = %d", d.K())
	}
}

func TestNewDistErrors(t *testing.T) {
	cases := []struct {
		name string
		w    []float64
	}{
		{"empty", nil},
		{"negative", []float64{0.5, -0.5, 1.0}},
		{"not-normalized", []float64{0.5, 0.6}},
		{"nan", []float64{math.NaN(), 1}},
	}
	for _, tc := range cases {
		if _, err := NewDist(tc.w); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestConcentrated(t *testing.T) {
	d := Concentrated(10, 3, 0.91)
	if math.Abs(d[3]-0.91) > 1e-12 {
		t.Fatalf("main mass %v", d[3])
	}
	for z, w := range d {
		if z != 3 && math.Abs(w-0.01) > 1e-12 {
			t.Fatalf("off-topic mass %v at %d, want 0.01", w, z)
		}
	}
	var sum float64
	for _, w := range d {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum %v", sum)
	}
	if _, err := NewDist(d); err != nil {
		t.Fatalf("Concentrated is not a valid Dist: %v", err)
	}
}

func TestConcentratedK1(t *testing.T) {
	d := Concentrated(1, 0, 0.91)
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("K=1 concentrated dist = %v", d)
	}
}

func TestConcentratedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concentrated(5, 7, 0.9)
}

func TestUniform(t *testing.T) {
	d := Uniform(4)
	for _, w := range d {
		if math.Abs(w-0.25) > 1e-12 {
			t.Fatalf("uniform weight %v", w)
		}
	}
}

func TestMixEq1(t *testing.T) {
	// 2 topics, 3 edges; verify Eq. 1 by hand.
	mo := NewModel(2, 3)
	mo.Set(0, 0, 0.4)
	mo.Set(0, 1, 0.0)
	mo.Set(0, 2, 1.0)
	mo.Set(1, 0, 0.8)
	mo.Set(1, 1, 0.5)
	mo.Set(1, 2, 0.0)
	gamma := Dist{0.25, 0.75}
	got, err := mo.Mix(gamma)
	if err != nil {
		t.Fatalf("Mix: %v", err)
	}
	want := []float32{0.25*0.4 + 0.75*0.8, 0.75 * 0.5, 0.25}
	for e := range want {
		if math.Abs(float64(got[e]-want[e])) > 1e-6 {
			t.Fatalf("edge %d: got %v want %v", e, got[e], want[e])
		}
	}
}

func TestMixWrongK(t *testing.T) {
	mo := NewModel(2, 3)
	if _, err := mo.Mix(Dist{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMixSharedModel(t *testing.T) {
	probs := []float32{0.1, 0.2, 0.3}
	mo := NewSharedModel(probs)
	if mo.K() != 1 || mo.M() != 3 {
		t.Fatalf("shared model K=%d M=%d", mo.K(), mo.M())
	}
	got := mo.MustMix(Dist{1})
	for e := range probs {
		if got[e] != probs[e] {
			t.Fatalf("shared mix mismatch at %d", e)
		}
	}
	// Mix must copy: mutating the result must not affect the model.
	got[0] = 0.99
	if mo.At(0, 0) != 0.1 {
		t.Fatal("Mix aliased internal storage")
	}
}

func TestMixStaysInUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		k := 1 + r.IntN(5)
		m := int64(1 + r.IntN(20))
		mo := NewModel(k, m)
		for z := 0; z < k; z++ {
			for e := int64(0); e < m; e++ {
				mo.Set(z, e, float32(r.Float64()))
			}
		}
		w := make([]float64, k)
		var sum float64
		for z := range w {
			w[z] = r.Float64() + 1e-9
			sum += w[z]
		}
		for z := range w {
			w[z] /= sum
		}
		gamma, err := NewDist(w)
		if err != nil {
			return false
		}
		mixed := mo.MustMix(gamma)
		for _, p := range mixed {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMixIsConvexCombination(t *testing.T) {
	// Mixed probability must lie between the min and max per-topic value.
	mo := NewModel(3, 4)
	vals := [][]float32{
		{0.1, 0.9, 0.5, 0.0},
		{0.2, 0.1, 0.5, 1.0},
		{0.3, 0.5, 0.5, 0.5},
	}
	for z := range vals {
		for e := range vals[z] {
			mo.Set(z, int64(e), vals[z][e])
		}
	}
	mixed := mo.MustMix(Dist{0.2, 0.3, 0.5})
	for e := 0; e < 4; e++ {
		lo, hi := float32(1), float32(0)
		for z := 0; z < 3; z++ {
			if vals[z][e] < lo {
				lo = vals[z][e]
			}
			if vals[z][e] > hi {
				hi = vals[z][e]
			}
		}
		if mixed[e] < lo-1e-6 || mixed[e] > hi+1e-6 {
			t.Fatalf("edge %d: mix %v outside [%v,%v]", e, mixed[e], lo, hi)
		}
	}
}

func TestSetPanicsOnBadProb(t *testing.T) {
	mo := NewModel(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mo.Set(0, 0, 1.5)
}

func TestConstCTP(t *testing.T) {
	c := ConstCTP{Nodes: 10, P: 0.02}
	if c.N() != 10 || c.At(3) != 0.02 {
		t.Fatal("ConstCTP accessor mismatch")
	}
}

func TestVecCTP(t *testing.T) {
	v, err := NewVecCTP([]float32{0.1, 0.2})
	if err != nil {
		t.Fatalf("NewVecCTP: %v", err)
	}
	if v.N() != 2 || math.Abs(v.At(1)-0.2) > 1e-7 {
		t.Fatal("VecCTP accessor mismatch")
	}
	if _, err := NewVecCTP([]float32{1.2}); err == nil {
		t.Fatal("expected error for CTP > 1")
	}
	if _, err := NewVecCTP([]float32{-0.1}); err == nil {
		t.Fatal("expected error for CTP < 0")
	}
}
