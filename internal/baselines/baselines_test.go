package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestMyopicOnFig1IsAllocationA(t *testing.T) {
	// On Figure 1 every user's best ad by δ·cpe is ad a (0.9 beats all),
	// so MYOPIC with κ=1 reproduces the paper's allocation A exactly.
	inst := gen.Fig1Instance(0)
	alloc := Myopic(inst)
	want := gen.Fig1AllocationA()
	if len(alloc.Seeds[0]) != 6 {
		t.Fatalf("ad a got %d seeds, want all 6", len(alloc.Seeds[0]))
	}
	for i, u := range want.Seeds[0] {
		if alloc.Seeds[0][i] != u {
			t.Fatalf("seeds %v, want %v", alloc.Seeds[0], want.Seeds[0])
		}
	}
	for i := 1; i < 4; i++ {
		if len(alloc.Seeds[i]) != 0 {
			t.Fatalf("ad %d got seeds %v, want none", i, alloc.Seeds[i])
		}
	}
	if err := alloc.Validate(inst); err != nil {
		t.Fatal(err)
	}
}

func TestMyopicRespectsKappa(t *testing.T) {
	for kappa := 1; kappa <= 5; kappa++ {
		inst := gen.Fig1Instance(0)
		inst.Kappa = core.ConstKappa(kappa)
		alloc := Myopic(inst)
		if err := alloc.Validate(inst); err != nil {
			t.Errorf("κ=%d: %v", kappa, err)
		}
		// Each user gets exactly min(κ, h) ads.
		want := kappa
		if want > len(inst.Ads) {
			want = len(inst.Ads)
		}
		if got := alloc.NumSeeds(); got != 6*want {
			t.Errorf("κ=%d: %d assignments, want %d", kappa, got, 6*want)
		}
	}
}

func TestMyopicTargetsEveryone(t *testing.T) {
	// Table 3: MYOPIC targets all |V| nodes regardless of κ.
	inst := gen.Flixster(gen.Options{Seed: 3, Scale: 0.02})
	alloc := Myopic(inst)
	if alloc.DistinctTargeted() != inst.G.N() {
		t.Errorf("targeted %d of %d nodes", alloc.DistinctTargeted(), inst.G.N())
	}
}

func TestMyopicPlusValid(t *testing.T) {
	for kappa := 1; kappa <= 3; kappa++ {
		inst := gen.Flixster(gen.Options{Seed: 4, Scale: 0.02, Kappa: kappa})
		alloc := MyopicPlus(inst)
		if err := alloc.Validate(inst); err != nil {
			t.Errorf("κ=%d: %v", kappa, err)
		}
	}
}

func TestMyopicPlusStopsAtBudget(t *testing.T) {
	inst := gen.Flixster(gen.Options{Seed: 5, Scale: 0.02})
	alloc := MyopicPlus(inst)
	for i, ad := range inst.Ads {
		var est float64
		var prev float64
		for _, u := range alloc.Seeds[i] {
			prev = est
			est += ad.Params.CTPs.At(u) * ad.CPE
		}
		// The virality-blind estimate must not have reached the budget
		// before the last seed was added (otherwise the ad took too many),
		// and must reach it at the end unless users ran out.
		if len(alloc.Seeds[i]) > 0 && prev >= ad.Budget {
			t.Errorf("ad %d: estimate %.2f already ≥ budget %.2f before last seed", i, prev, ad.Budget)
		}
	}
}

func TestMyopicPlusRanksByCTP(t *testing.T) {
	inst := gen.Fig1Instance(0)
	// Give ad a distinct CTPs so the ranking is observable.
	// With ConstCTP all users tie; instead verify the round-robin shares
	// users across ads under κ=1: all four ads should get at least one seed
	// (budgets 4/2/2/1 with per-seed estimate ≤ 0.9 keep everyone hungry).
	alloc := MyopicPlus(inst)
	if err := alloc.Validate(inst); err != nil {
		t.Fatal(err)
	}
	for i := range inst.Ads {
		if len(alloc.Seeds[i]) == 0 {
			t.Errorf("ad %d starved by round-robin", i)
		}
	}
	if alloc.NumSeeds() != 6 {
		t.Errorf("κ=1 should exhaust all 6 users, got %d", alloc.NumSeeds())
	}
}

func TestMyopicPlusFewerTargetsThanMyopicAsKappaGrows(t *testing.T) {
	// Table 3 trend: MYOPIC+ targets fewer distinct nodes as κ grows
	// (it reuses high-CTP users), while MYOPIC always targets everyone.
	inst1 := gen.Flixster(gen.Options{Seed: 6, Scale: 0.02, Kappa: 1})
	inst5 := gen.Flixster(gen.Options{Seed: 6, Scale: 0.02, Kappa: 5})
	t1 := MyopicPlus(inst1).DistinctTargeted()
	t5 := MyopicPlus(inst5).DistinctTargeted()
	if t5 > t1 {
		t.Errorf("targeted κ=5 (%d) > κ=1 (%d)", t5, t1)
	}
}
