// Package baselines implements the paper's non-viral allocation baselines
// (§6): MYOPIC, which matches each user with her most relevant ads by
// expected direct revenue and ignores both budgets and virality, and
// MYOPIC+, which adds budget awareness (but still no virality) by filling
// each ad's budget with the highest-CTP users in round-robin order.
package baselines

import (
	"sort"

	"repro/internal/core"
)

// Myopic assigns to every user u her κ_u most relevant ads — the ads
// maximizing the virality-blind expected revenue δ(u,i)·cpe(i). This is the
// paper's MYOPIC baseline (allocation A of Figure 1 follows it). Budgets
// are ignored entirely.
func Myopic(inst *core.Instance) *core.Allocation {
	h := len(inst.Ads)
	alloc := core.NewAllocation(h)
	type scored struct {
		ad    int
		score float64
	}
	scores := make([]scored, h)
	for u := int32(0); u < int32(inst.G.N()); u++ {
		for i, ad := range inst.Ads {
			scores[i] = scored{ad: i, score: ad.Params.CTPs.At(u) * ad.CPE}
		}
		sort.SliceStable(scores, func(a, b int) bool { return scores[a].score > scores[b].score })
		k := inst.Kappa.At(u)
		if k > h {
			k = h
		}
		for j := 0; j < k; j++ {
			if scores[j].score <= 0 {
				break
			}
			i := scores[j].ad
			alloc.Seeds[i] = append(alloc.Seeds[i], u)
		}
	}
	return alloc
}

// MyopicPlus is the budget-conscious variant: for each ad it ranks users by
// CTP δ(u,i) (descending, node id breaking ties) and assigns seeds in
// round-robin over the ads, skipping users whose attention bound is
// exhausted, until the ad's virality-blind revenue estimate
// Σ_{u∈S_i} δ(u,i)·cpe(i) reaches its budget B_i.
func MyopicPlus(inst *core.Instance) *core.Allocation {
	n := inst.G.N()
	h := len(inst.Ads)
	alloc := core.NewAllocation(h)
	attention := core.NewAttention(n, inst.Kappa)

	// Per-ad CTP ranking.
	order := make([][]int32, h)
	for i, ad := range inst.Ads {
		ord := make([]int32, n)
		for u := range ord {
			ord[u] = int32(u)
		}
		ctp := ad.Params.CTPs
		sort.SliceStable(ord, func(a, b int) bool {
			return ctp.At(ord[a]) > ctp.At(ord[b])
		})
		order[i] = ord
	}

	cursor := make([]int, h)
	estRev := make([]float64, h)
	done := make([]bool, h)
	remaining := h
	for remaining > 0 {
		progressed := false
		for i := 0; i < h && remaining > 0; i++ {
			if done[i] {
				continue
			}
			if estRev[i] >= inst.Ads[i].Budget {
				done[i] = true
				remaining--
				continue
			}
			// Advance to the next user with spare attention.
			for cursor[i] < n && !attention.CanTake(order[i][cursor[i]]) {
				cursor[i]++
			}
			if cursor[i] >= n {
				done[i] = true
				remaining--
				continue
			}
			u := order[i][cursor[i]]
			cursor[i]++
			attention.Take(u)
			alloc.Seeds[i] = append(alloc.Seeds[i], u)
			estRev[i] += inst.Ads[i].Params.CTPs.At(u) * inst.Ads[i].CPE
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return alloc
}
