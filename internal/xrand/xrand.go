// Package xrand provides deterministic, splittable random number streams and
// the sampling distributions used throughout the repository.
//
// Every stochastic component in this codebase (dataset generation, Monte
// Carlo diffusion, RR-set sampling) draws from an xrand stream seeded
// explicitly, so that experiments are reproducible bit-for-bit given the
// same seed and GOMAXPROCS-independent wherever parallelism is used (each
// worker receives its own derived stream).
package xrand

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic pseudo-random stream. It wraps math/rand/v2's PCG
// generator and adds the distribution helpers the repository needs.
type Rand struct {
	*rand.Rand
	seed uint64
}

// New returns a stream seeded with seed. Two streams with the same seed
// produce identical sequences.
func New(seed uint64) *Rand {
	return &Rand{Rand: rand.New(rand.NewPCG(seed, splitmix64(seed))), seed: seed}
}

// Seed returns the seed the stream was created with.
func (r *Rand) Seed() uint64 { return r.seed }

// Split derives an independent child stream from this stream's seed and the
// given index. Splitting is a pure function of (seed, idx): it does not
// consume state from the parent, so parallel workers can be seeded
// deterministically regardless of scheduling order.
func (r *Rand) Split(idx uint64) *Rand {
	return New(splitmix64(r.seed ^ splitmix64(idx+0x9e3779b97f4a7c15)))
}

// splitmix64 is the SplitMix64 mixing function, used to decorrelate seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uniform returns a sample from U[lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exponential returns a sample from an exponential distribution with the
// given mean, via the inverse transform on U(0,1) (the technique the paper
// cites from Devroye [11] for the EPINIONS probabilities).
func (r *Rand) Exponential(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0); Float64 is in [0,1).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// ExponentialClamped samples Exponential(mean) clamped into [0, hi]. It is
// used for influence probabilities, which must stay in [0, 1].
func (r *Rand) ExponentialClamped(mean, hi float64) float64 {
	return math.Min(r.Exponential(mean), hi)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bernoulli32 returns true with probability p (float32 fast path used by
// the diffusion and RR-set inner loops).
func (r *Rand) Bernoulli32(p float32) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float32(r.Float64()) < p
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0 (mirrors
// math/rand/v2 semantics).
func (r *Rand) IntN(n int) int { return r.Rand.IntN(n) }

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// PowerLawWeights returns n weights following a power-law with the given
// exponent beta > 1 (heavier tails for smaller beta), normalized to sum to
// 1. Weight i is proportional to (i + i0)^(-1/(beta-1)), the standard
// Chung-Lu construction that yields a degree distribution with exponent
// beta. The slice is deterministic given (n, beta) — no randomness — and the
// caller typically shuffles node identities separately.
func PowerLawWeights(n int, beta float64) []float64 {
	if n <= 0 {
		return nil
	}
	if beta <= 1 {
		panic("xrand: power-law exponent must be > 1")
	}
	alpha := 1 / (beta - 1)
	w := make([]float64, n)
	var sum float64
	const i0 = 1.0 // offset keeps the maximum weight finite
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i)+i0, -alpha)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
