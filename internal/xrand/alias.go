package xrand

// Alias implements Walker's alias method for O(1) sampling from a discrete
// distribution. Dataset generators use it to draw millions of weighted
// endpoints (Chung-Lu style) in linear preprocessing time.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights. The
// weights need not be normalized. It panics on empty or all-zero input.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("xrand: NewAlias on empty weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("xrand: NewAlias on negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("xrand: NewAlias on all-zero weights")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; classify into small and large work lists.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Remaining entries are (numerically) exactly 1.
	for _, l := range large {
		a.prob[l] = 1
	}
	for _, s := range small {
		a.prob[s] = 1
	}
	return a
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index from the distribution using r.
func (a *Alias) Sample(r *Rand) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
