package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	// Children with different indices must differ.
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
	// Split is a pure function: same index twice gives the same stream.
	d1 := parent.Split(0)
	e1 := New(7).Split(0)
	v := d1.Uint64()
	if v != e1.Uint64() {
		t.Fatal("split is not a pure function of (seed, idx)")
	}
}

func TestSplitDoesNotConsumeParentState(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(3) // must not advance a
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split consumed parent state")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(0.01, 0.03)
		if v < 0.01 || v >= 0.03 {
			t.Fatalf("Uniform(0.01,0.03) returned %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(1.0 / 30.0)
	}
	mean := sum / n
	if math.Abs(mean-1.0/30.0) > 0.001 {
		t.Fatalf("Exponential mean = %v, want ~%v", mean, 1.0/30.0)
	}
}

func TestExponentialClamped(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.ExponentialClamped(0.5, 1.0)
		if v < 0 || v > 1 {
			t.Fatalf("ExponentialClamped out of [0,1]: %v", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli32(0) {
			t.Fatal("Bernoulli32(0) returned true")
		}
		if !r.Bernoulli32(1) {
			t.Fatal("Bernoulli32(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) empirical rate %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(1000, 2.1)
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d not positive: %v", i, v)
		}
		if i > 0 && v > w[i-1] {
			t.Fatalf("weights not non-increasing at %d", i)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
}

func TestPowerLawWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for beta <= 1")
		}
	}()
	PowerLawWeights(10, 1.0)
}

func TestPowerLawWeightsEmpty(t *testing.T) {
	if w := PowerLawWeights(0, 2.0); w != nil {
		t.Fatalf("expected nil for n=0, got %v", w)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	if a.N() != 4 {
		t.Fatalf("N = %d, want 4", a.N())
	}
	r := New(23)
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10.0
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d: empirical %v, want %v", i, got, want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{5})
	r := New(29)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias returned nonzero index")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	cases := []struct {
		name string
		w    []float64
	}{
		{"empty", nil},
		{"zero", []float64{0, 0}},
		{"negative", []float64{1, -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %s weights", tc.name)
				}
			}()
			NewAlias(tc.w)
		})
	}
}

func TestAliasUniformCase(t *testing.T) {
	// All-equal weights must give a uniform sampler.
	a := NewAlias([]float64{1, 1, 1, 1, 1})
	r := New(31)
	counts := make([]int, 5)
	const n = 250000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.2) > 0.01 {
			t.Fatalf("uniform alias outcome %d rate %v", i, float64(c)/n)
		}
	}
}
