GO ?= go

# Fast packages worth the race detector on every run; the root package's
# paper-replication tests are slower and covered by `test`.
RACE_PKGS = ./internal/core/... ./internal/rrset/... ./internal/serve/... \
            ./internal/sim/... ./internal/shard/... ./internal/obs/... \
            ./internal/graph/... ./internal/xrand/... ./internal/topic/... \
            ./internal/bandit/...

# Packages whose exported API must stay fully documented (docs-check);
# cmd/doccheck walks the ASTs, so the gate needs no external tooling.
DOC_PKGS = . ./internal/core ./internal/rrset ./internal/serve ./internal/sim \
           ./internal/shard ./internal/obs ./internal/bandit

# Per-package statement-coverage floors enforced by cover-gate, as
# "import/path:floor" pairs. Floors are deliberate and sparse: only
# packages whose correctness rests on exhaustive unit tests (rather than
# the repo-wide golden/replication suites) carry one.
COVER_FLOORS = ./internal/bandit:85

# Hot-path benchmarks guarded by `make bench` and CI: index build/warm, the
# snapshot codec — the paths the flat-arena (CSR) layout is accountable
# for — the campaign-lifecycle simulation workload, the serve-layer
# request path (workspace pooling + HTTP), and the sharded scatter-gather
# allocation at K = 1..8. BENCH_index.json captures the machine-readable
# (test2json) stream for regression tracking across PRs.
#
# Bench artifacts: BENCH_index.json is the ONLY committed baseline —
# re-baseline deliberately with `mv BENCH_head.json BENCH_index.json`
# after a reviewed perf change. BENCH_head.json is the throwaway stream
# `make bench-compare` writes for the current HEAD; it is .gitignore'd and
# must never be committed.
BENCH_PATTERN = BenchmarkIndexBuild|BenchmarkIndexColdVsWarm|BenchmarkWarmWorkspaceReuse|BenchmarkSnapshotCodec|BenchmarkBuildInverted|BenchmarkLifecycleSim|BenchmarkServeAllocate|BenchmarkShardedAllocate|BenchmarkObsOverhead|BenchmarkKernels|BenchmarkAllocateBatch
BENCH_PKGS    = . ./internal/rrset ./internal/sim ./internal/serve ./internal/shard

# Extra flags for bench-compare (CI passes "-benchtime 1x -short" to keep
# the non-gating delta step cheap).
BENCH_FLAGS ?=

.PHONY: ci build vet fmt-check docs-check test race cover-gate bench bench-all bench-ci bench-compare bench-gate serve

ci: vet fmt-check docs-check build test race cover-gate bench-ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
	    echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Fails when exported identifiers in DOC_PKGS lack doc comments (or a
# package has no package comment) — keeps `go doc` output complete.
docs-check:
	$(GO) run ./cmd/doccheck $(DOC_PKGS)

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Fails when any COVER_FLOORS package's statement coverage (go test
# -coverprofile, measured by `go tool cover -func`) is below its floor.
cover-gate:
	@set -e; for spec in $(COVER_FLOORS); do \
	    pkg="$${spec%:*}"; floor="$${spec#*:}"; \
	    profile="$$(mktemp)"; \
	    $(GO) test -count=1 -coverprofile="$$profile" "$$pkg" >/dev/null; \
	    pct="$$($(GO) tool cover -func="$$profile" | awk '/^total:/ {sub("%","",$$NF); print $$NF}')"; \
	    rm -f "$$profile"; \
	    echo "coverage $$pkg: $$pct% (floor $$floor%)"; \
	    ok="$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN {print (p >= f) ? 1 : 0}')"; \
	    if [ "$$ok" != 1 ]; then \
	        echo "cover-gate: $$pkg coverage $$pct% is below the $$floor% floor" >&2; exit 1; \
	    fi; \
	done

# Index build/warm + snapshot codec benchmarks with allocation stats;
# human-readable to stdout, test2json stream to BENCH_index.json.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 \
	    -json $(BENCH_PKGS) > BENCH_index.json
	@grep 'ns/op' BENCH_index.json | sed -e 's/.*"Test":"\([^"]*\)".*"Output":"/\1 /' -e 's/\\t/ /g' -e 's/\\n.*//'

# One iteration of the hot-path benchmarks in short mode — cheap enough for
# CI, loud enough that a hot-path regression (panic, blow-up, broken warm
# path) fails the build.
bench-ci:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem \
	    -short -count=1 $(BENCH_PKGS)

# Benchmark HEAD and diff against the committed BENCH_index.json with
# cmd/benchdiff (benchstat-style table: ns/op, B/op, allocs/op deltas).
# Non-gating — regressions print loudly but the target only fails on build
# or harness errors. The fresh stream lands in BENCH_head.json, so a
# satisfied reviewer can `mv BENCH_head.json BENCH_index.json` to re-baseline.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 \
	    $(BENCH_FLAGS) -json $(BENCH_PKGS) > BENCH_head.json
	$(GO) run ./cmd/benchdiff BENCH_index.json BENCH_head.json

# bench-compare with teeth: fail when any benchmark's time/op regressed
# more than MAX_REGRESS percent vs the committed baseline. Opt-in — the
# default CI delta step stays non-gating; flip a workflow to
# `make bench-gate` (ideally with -count>1 baselines) to enforce it.
MAX_REGRESS ?= 20
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 \
	    $(BENCH_FLAGS) -json $(BENCH_PKGS) > BENCH_head.json
	$(GO) run ./cmd/benchdiff -max-regress $(MAX_REGRESS) BENCH_index.json BENCH_head.json

# The full paper-replication benchmark suite (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

serve:
	$(GO) run ./cmd/adserver -addr :8080 -snapshots ./snapshots
