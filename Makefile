GO ?= go

# Fast packages worth the race detector on every run; the root package's
# paper-replication tests are slower and covered by `test`.
RACE_PKGS = ./internal/core/... ./internal/rrset/... ./internal/serve/... \
            ./internal/graph/... ./internal/xrand/... ./internal/topic/...

.PHONY: ci build vet test race bench serve

ci: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

serve:
	$(GO) run ./cmd/adserver -addr :8080 -snapshots ./snapshots
