GO ?= go

# Fast packages worth the race detector on every run; the root package's
# paper-replication tests are slower and covered by `test`.
RACE_PKGS = ./internal/core/... ./internal/rrset/... ./internal/serve/... \
            ./internal/graph/... ./internal/xrand/... ./internal/topic/...

# Hot-path benchmarks guarded by `make bench` and CI: index build/warm and
# the snapshot codec — the paths the flat-arena (CSR) layout is accountable
# for. BENCH_index.json captures the machine-readable (test2json) stream
# for regression tracking across PRs.
BENCH_PATTERN = BenchmarkIndexBuild|BenchmarkIndexColdVsWarm|BenchmarkSnapshotCodec|BenchmarkBuildInverted
BENCH_PKGS    = . ./internal/rrset

.PHONY: ci build vet test race bench bench-all bench-ci serve

ci: vet build test race bench-ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Index build/warm + snapshot codec benchmarks with allocation stats;
# human-readable to stdout, test2json stream to BENCH_index.json.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 \
	    -json $(BENCH_PKGS) > BENCH_index.json
	@grep 'ns/op' BENCH_index.json | sed -e 's/.*"Test":"\([^"]*\)".*"Output":"/\1 /' -e 's/\\t/ /g' -e 's/\\n.*//'

# One iteration of the hot-path benchmarks in short mode — cheap enough for
# CI, loud enough that a hot-path regression (panic, blow-up, broken warm
# path) fails the build.
bench-ci:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem \
	    -short -count=1 $(BENCH_PKGS)

# The full paper-replication benchmark suite (slow).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

serve:
	$(GO) run ./cmd/adserver -addr :8080 -snapshots ./snapshots
