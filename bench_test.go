// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus ablations for the design choices DESIGN.md calls
// out. Each benchmark regenerates its experiment at a laptop-scale
// configuration and reports the paper's metric (regret, targeted nodes,
// seconds, MB) via b.ReportMetric, so `go test -bench=. -benchmem` prints
// the same series the paper plots. EXPERIMENTS.md records the paper-vs-
// measured comparison; cmd/exprun prints the full tables at larger scales.
package socialads_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	socialads "repro"
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/exp"
	"repro/internal/gen"
	obspkg "repro/internal/obs"
	"repro/internal/rrset"
	"repro/internal/xrand"
)

// benchCfg is the shared scaled-down configuration (see DESIGN.md §4 for
// the scale note).
func benchCfg() exp.Config {
	return exp.Config{
		Seed:     1,
		Scale:    0.02,
		EvalRuns: 500,
		TIRM:     core.TIRMOptions{Eps: 0.3, MinTheta: 5000, MaxTheta: 50000},
	}
}

// BenchmarkFig1Toy regenerates the running example: Algorithm 1 (exact
// oracle) on the Figure 1 gadget, reporting the regret it achieves next to
// the paper's hand allocations (6.6 for A, 2.7 for B).
func BenchmarkFig1Toy(b *testing.B) {
	var regret float64
	for i := 0; i < b.N; i++ {
		inst := socialads.Fig1Instance(0)
		res, err := socialads.AllocateGreedyExact(inst, socialads.GreedyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		out := socialads.Evaluate(inst, res.Alloc, 20000, 3)
		regret = out.TotalRegret
	}
	b.ReportMetric(regret, "regret")
}

// BenchmarkTable1Datasets times generation of the four dataset analogues
// and reports their sizes.
func BenchmarkTable1Datasets(b *testing.B) {
	var nodes, edges float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		nodes, edges = 0, 0
		for _, r := range rows {
			nodes += float64(r.Nodes)
			edges += float64(r.Edges)
		}
	}
	b.ReportMetric(nodes, "nodes")
	b.ReportMetric(edges, "edges")
}

// BenchmarkTable2Budgets regenerates the advertiser-parameter summary.
func BenchmarkTable2Budgets(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		mean = rows[0].BudgetMean
	}
	b.ReportMetric(mean, "flixster-budget-mean")
}

// BenchmarkFig3RegretVsAttention runs the κ sweep (λ=0, κ∈{1,5}) on the
// FLIXSTER analogue with all four algorithms and reports the endpoint
// regrets relative to budget. Paper shape: TIRM lowest and decreasing in
// κ; MYOPIC/MYOPIC+ far above and increasing in κ.
func BenchmarkFig3RegretVsAttention(b *testing.B) {
	cfg := benchCfg()
	var tirm1, tirm5, myopic5 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.QualitySweep(exp.Flixster, cfg, []int{1, 5}, []float64{0}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch {
			case r.Algo == exp.AlgoTIRM && r.Kappa == 1:
				tirm1 = 100 * r.RegretOverBudget
			case r.Algo == exp.AlgoTIRM && r.Kappa == 5:
				tirm5 = 100 * r.RegretOverBudget
			case r.Algo == exp.AlgoMyopic && r.Kappa == 5:
				myopic5 = 100 * r.RegretOverBudget
			}
		}
	}
	b.ReportMetric(tirm1, "tirm-k1-%budget")
	b.ReportMetric(tirm5, "tirm-k5-%budget")
	b.ReportMetric(myopic5, "myopic-k5-%budget")
}

// BenchmarkFig4RegretVsLambda runs the λ sweep (κ=1, λ∈{0,1}).
// Paper shape: regret grows with λ for every algorithm, TIRM stays lowest.
func BenchmarkFig4RegretVsLambda(b *testing.B) {
	cfg := benchCfg()
	var tirm0, tirm1 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.QualitySweep(exp.Flixster, cfg, []int{1}, []float64{0, 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algo == exp.AlgoTIRM {
				if r.Lambda == 0 {
					tirm0 = r.TotalRegret
				} else {
					tirm1 = r.TotalRegret
				}
			}
		}
	}
	b.ReportMetric(tirm0, "tirm-l0-regret")
	b.ReportMetric(tirm1, "tirm-l1-regret")
}

// BenchmarkFig5IndividualRegrets regenerates the per-ad overshoot
// distribution (λ=0, κ=5) and reports the skew statistic the paper uses to
// argue TIRM's distribution is more uniform than GREEDY-IRIE's.
func BenchmarkFig5IndividualRegrets(b *testing.B) {
	cfg := benchCfg()
	var tirmSkew, irieSkew float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig5(exp.Flixster, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tirmSkew = exp.Fig5Skew(rows, exp.AlgoTIRM)
		irieSkew = exp.Fig5Skew(rows, exp.AlgoGreedyIRIE)
	}
	b.ReportMetric(tirmSkew, "tirm-skew")
	b.ReportMetric(irieSkew, "irie-skew")
}

// BenchmarkTable3TargetedNodes reports distinct targeted nodes at κ=1 and
// κ=5 for TIRM (decreasing in κ) and MYOPIC (always n).
func BenchmarkTable3TargetedNodes(b *testing.B) {
	cfg := benchCfg()
	var tirm1, tirm5, myopic float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.QualitySweep(exp.Flixster, cfg, []int{1, 5}, []float64{0},
			[]exp.Algo{exp.AlgoTIRM, exp.AlgoMyopic})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch {
			case r.Algo == exp.AlgoTIRM && r.Kappa == 1:
				tirm1 = float64(r.DistinctTargeted)
			case r.Algo == exp.AlgoTIRM && r.Kappa == 5:
				tirm5 = float64(r.DistinctTargeted)
			case r.Algo == exp.AlgoMyopic && r.Kappa == 1:
				myopic = float64(r.DistinctTargeted)
			}
		}
	}
	b.ReportMetric(tirm1, "tirm-k1-targeted")
	b.ReportMetric(tirm5, "tirm-k5-targeted")
	b.ReportMetric(myopic, "myopic-targeted")
}

// BenchmarkFig6Scalability regenerates the running-time curves: TIRM on
// the DBLP analogue for h ∈ {1, 5} (Fig. 6a) and for two budgets
// (Fig. 6b). Paper shape: near-linear in h, flat-ish in budget.
func BenchmarkFig6Scalability(b *testing.B) {
	cfg := benchCfg()
	var h1, h5, b1, b2 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig6VaryH(exp.DBLP, cfg, []int{1, 5}, []exp.Algo{exp.AlgoTIRM})
		if err != nil {
			b.Fatal(err)
		}
		h1, h5 = rows[0].WallSeconds, rows[1].WallSeconds
		bud, err := exp.Fig6VaryBudget(exp.DBLP, cfg, []float64{5000, 20000}, []exp.Algo{exp.AlgoTIRM})
		if err != nil {
			b.Fatal(err)
		}
		b1, b2 = bud[0].WallSeconds, bud[1].WallSeconds
	}
	b.ReportMetric(h5/h1, "time-ratio-h5/h1")
	b.ReportMetric(b2/b1, "time-ratio-B4x")
}

// BenchmarkTable4Memory reports TIRM's RR-index footprint growth with h.
func BenchmarkTable4Memory(b *testing.B) {
	cfg := benchCfg()
	var m1, m5 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(exp.DBLP, cfg, []int{1, 5}, []exp.Algo{exp.AlgoTIRM})
		if err != nil {
			b.Fatal(err)
		}
		m1 = float64(rows[0].MemBytes) / 1e6
		m5 = float64(rows[1].MemBytes) / 1e6
	}
	b.ReportMetric(m1, "h1-MB")
	b.ReportMetric(m5, "h5-MB")
}

// BenchmarkAblationBoostedBudget regenerates the §3-Discussion ablation:
// allocate against boosted budgets B' = (1+β)B, score against the
// originals; overshoot (free service) should grow with β while undershoot
// shrinks.
func BenchmarkAblationBoostedBudget(b *testing.B) {
	cfg := benchCfg()
	var freeService float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Boost(exp.Flixster, cfg, []float64{0, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		freeService = rows[1].Overshoot - rows[0].Overshoot
	}
	b.ReportMetric(freeService, "extra-free-service")
}

// BenchmarkAblationSoftCoverage runs the ABL-SOFT ablation: the paper's
// hard set-removal bookkeeping against the TIRM-W CTP-weighted extension.
// The reported calibration error is the gap between TIRM's internal
// revenue estimate and the neutral MC evaluation — the first-seed-credit
// bias that makes hard mode overshoot budgets at high seed density.
func BenchmarkAblationSoftCoverage(b *testing.B) {
	cfg := benchCfg()
	var hardErr, softErr, hardPct, softPct float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.SoftAblation(exp.Flixster, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hardErr, softErr = rows[0].CalibrationErr, rows[1].CalibrationErr
		hardPct, softPct = 100*rows[0].RegretOverBudget, 100*rows[1].RegretOverBudget
	}
	b.ReportMetric(hardErr, "hard-calib-err")
	b.ReportMetric(softErr, "soft-calib-err")
	b.ReportMetric(hardPct, "hard-%budget")
	b.ReportMetric(softPct, "soft-%budget")
}

// BenchmarkAblationRRCvsRR compares the two CTP treatments of §5.2: plain
// RR-sets with δ-scaled marginals (Theorem 5, what TIRM uses) versus RRC
// sets with node coins. The paper argues RRC needs ~1/δ more samples for
// the same signal: with CTP ≈ 0.02, an RRC set is ~50× less likely to
// register a given seed, so its per-set information is proportionally
// lower while its sampling cost is the same.
func BenchmarkAblationRRCvsRR(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 1, Scale: 0.02})
	ad := inst.Ads[0]
	s := rrset.NewSampler(inst.G, ad.Params.Probs, ad.Params.CTPs)
	const batch = 20000
	b.Run("RR", func(b *testing.B) {
		var nonEmpty int
		for i := 0; i < b.N; i++ {
			sets := s.SampleBatchRR(batch, xrand.New(uint64(i)), 0)
			nonEmpty = 0
			for _, set := range sets {
				if len(set) > 0 {
					nonEmpty++
				}
			}
		}
		b.ReportMetric(float64(nonEmpty)/batch, "nonempty-frac")
	})
	b.Run("RRC", func(b *testing.B) {
		var nonEmpty int
		for i := 0; i < b.N; i++ {
			sets := s.SampleBatchRRC(batch, xrand.New(uint64(i)), 0)
			nonEmpty = 0
			for _, set := range sets {
				if len(set) > 0 {
					nonEmpty++
				}
			}
		}
		b.ReportMetric(float64(nonEmpty)/batch, "nonempty-frac")
	})
}

// BenchmarkAblationCELF measures the lazy-evaluation saving of the CELF
// queue inside Algorithm 1: marginal evaluations per committed seed versus
// the naive h·n scan the textbook greedy would pay.
func BenchmarkAblationCELF(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 2, Scale: 0.01, Kappa: 2})
	var evalsPerSeed, naivePerSeed float64
	for i := 0; i < b.N; i++ {
		res, err := socialads.AllocateGreedyIRIE(inst, socialads.IRIEOptions{}, socialads.GreedyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations > 0 {
			evalsPerSeed = float64(res.Evals) / float64(res.Iterations)
			naivePerSeed = float64(inst.G.N() * len(inst.Ads))
		}
	}
	b.ReportMetric(evalsPerSeed, "evals/seed")
	b.ReportMetric(naivePerSeed, "naive-evals/seed")
}

// BenchmarkAblationCandidateDepth compares the paper's depth-1
// SelectBestNode against the CandidateDepth extension (score the top-4
// coverage candidates by regret drop). Depth helps near budget boundaries
// where the max-coverage node overshoots.
func BenchmarkAblationCandidateDepth(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 7, Scale: 0.02, Kappa: 1})
	var r1, r4 float64
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{1, 4} {
			res, err := socialads.AllocateTIRM(inst, 42, socialads.TIRMOptions{
				Eps: 0.3, MinTheta: 5000, MaxTheta: 50000, CandidateDepth: depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			out := socialads.Evaluate(inst, res.Alloc, 500, 7)
			if depth == 1 {
				r1 = out.TotalRegret
			} else {
				r4 = out.TotalRegret
			}
		}
	}
	b.ReportMetric(r1, "depth1-regret")
	b.ReportMetric(r4, "depth4-regret")
}

// --- Micro-benchmarks for the substrates -------------------------------

// BenchmarkDiffusionMC measures parallel TIC-CTP cascade throughput.
func BenchmarkDiffusionMC(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 3, Scale: 0.05})
	sim := diffusion.NewSimulator(inst.G, inst.Ads[0].Params)
	seeds := make([]int32, 50)
	for i := range seeds {
		seeds[i] = int32(i * 7)
	}
	rng := xrand.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SpreadMCParallel(seeds, 10000, rng)
	}
}

// BenchmarkRRSampling measures RR-set sampling throughput.
func BenchmarkRRSampling(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 4, Scale: 0.05})
	s := rrset.NewSampler(inst.G, inst.Ads[0].Params.Probs, nil)
	rng := xrand.New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleBatchRR(50000, rng, uint64(i))
	}
}

// BenchmarkTIRMAllocate measures a full TIRM run on the FLIXSTER analogue.
func BenchmarkTIRMAllocate(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 5, Scale: 0.02})
	b.ResetTimer()
	var seeds int
	for i := 0; i < b.N; i++ {
		res, err := socialads.AllocateTIRM(inst, uint64(i), socialads.TIRMOptions{
			Eps: 0.3, MinTheta: 5000, MaxTheta: 50000,
		})
		if err != nil {
			b.Fatal(err)
		}
		seeds = res.Alloc.NumSeeds()
	}
	b.ReportMetric(float64(seeds), "seeds")
}

// BenchmarkIndexColdVsWarm quantifies the two-stage split on the FLIXSTER
// analogue: "cold" is the one-shot core.TIRM (sample + select every call,
// what every CLI invocation used to pay); "warm" is AllocateFromIndex
// against a prebuilt index (what the serve layer pays per request). The
// warm path does no reverse-BFS sampling, only coverage bookkeeping, and
// must come in at least 5× faster.
func BenchmarkIndexColdVsWarm(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 5, Scale: 0.02})
	opts := socialads.TIRMOptions{Eps: 0.3, MinTheta: 5000, MaxTheta: 50000}
	b.Run("cold-TIRM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := socialads.AllocateTIRM(inst, 42, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-AllocateFromIndex", func(b *testing.B) {
		idx, err := socialads.BuildIndex(inst, 42, opts)
		if err != nil {
			b.Fatal(err)
		}
		// One untimed run grows the index to the θs the selection needs.
		if _, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts})
			if err != nil {
				b.Fatal(err)
			}
			if res.TotalSetsSampled != 0 {
				b.Fatalf("warm run drew %d sets", res.TotalSetsSampled)
			}
		}
	})
}

// BenchmarkWarmWorkspaceReuse isolates what workspace pooling is worth on
// the warm path: "pooled" keeps one AllocWorkspacePool across iterations
// (the steady state of internal/serve, where each cache entry owns a
// pool), "cold-workspace" hands every request a fresh pool so each run
// rebuilds its per-ad coverage state from scratch. Allocations are
// byte-identical either way — the delta is pure allocation and
// reinitialization cost.
func BenchmarkWarmWorkspaceReuse(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 5, Scale: 0.02})
	opts := socialads.TIRMOptions{Eps: 0.3, MinTheta: 5000, MaxTheta: 50000}
	idx, err := socialads.BuildIndex(inst, 42, opts)
	if err != nil {
		b.Fatal(err)
	}
	// Grow the index to the θs selection needs so both variants are warm.
	if _, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts}); err != nil {
		b.Fatal(err)
	}
	b.Run("pooled", func(b *testing.B) {
		pool := &socialads.AllocWorkspacePool{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts, Pool: pool}); err != nil {
				b.Fatal(err)
			}
		}
		hits, misses := pool.Stats()
		b.ReportMetric(float64(hits)/float64(hits+misses), "pool-hit-rate")
	})
	b.Run("cold-workspace", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool := &socialads.AllocWorkspacePool{}
			if _, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts, Pool: pool}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsOverhead prices the observability hooks on the warm
// allocation path: "nil-observer" is the production fast path (no observer
// attached — no clocks are read, so allocs/op must match the pooled warm
// baseline exactly), "observed" attaches an AllocObserver and pays the
// per-phase time.Now() calls plus one callback per run. The delta is the
// instrumentation bill; benchdiff guards it from growing.
func BenchmarkObsOverhead(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 5, Scale: 0.02})
	opts := socialads.TIRMOptions{Eps: 0.3, MinTheta: 5000, MaxTheta: 50000}
	idx, err := socialads.BuildIndex(inst, 42, opts)
	if err != nil {
		b.Fatal(err)
	}
	// Grow the index to the θs selection needs so both variants are warm.
	if _, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts}); err != nil {
		b.Fatal(err)
	}
	b.Run("nil-observer", func(b *testing.B) {
		pool := &socialads.AllocWorkspacePool{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts, Pool: pool}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("observed", func(b *testing.B) {
		pool := &socialads.AllocWorkspacePool{}
		var obs countingObserver
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := socialads.AllocRequest{Opts: opts, Pool: pool, Observer: &obs}
			if _, err := socialads.AllocateFromIndex(idx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if obs.calls != b.N {
			b.Fatalf("observer saw %d runs, want %d", obs.calls, b.N)
		}
	})
	b.Run("traced", func(b *testing.B) {
		// The full tracing bill: one root span per run plus the phase
		// children and explain commit events the serve layer records for
		// a traced request. The delta over "observed" prices span trees.
		pool := &socialads.AllocWorkspacePool{}
		tracer := obspkg.NewTracer(obspkg.TracerConfig{Capacity: 64})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, span := tracer.StartSpan(ctx, "alloc")
			req := socialads.AllocRequest{
				Opts: opts, Pool: pool, Explain: true,
				Observer: &spanObserver{span: span},
			}
			if _, err := socialads.AllocateFromIndex(idx, req); err != nil {
				b.Fatal(err)
			}
			span.End()
		}
	})
}

// spanObserver mirrors the serve layer's traced-request observer: phase
// timings become synthetic child spans and explain commits become span
// events, so BenchmarkObsOverhead/traced prices the whole rendering path.
type spanObserver struct{ span *obspkg.Span }

func (o *spanObserver) ObserveAllocation(t socialads.AllocPhaseTimings) {
	o.span.SetInt("rounds", int64(t.Rounds))
	var offset time.Duration
	for p := socialads.AllocPhase(0); p < core.NumAllocPhases; p++ {
		d := t.Phase[p]
		if d <= 0 {
			continue
		}
		o.span.AddChild("phase."+p.String(), offset, d)
		offset += d
	}
}

func (o *spanObserver) ObserveCommit(ev socialads.AllocCommitEvent) {
	o.span.Event("commit",
		obspkg.Int("round", int64(ev.Round)),
		obspkg.Int("ad", int64(ev.Ad)),
		obspkg.Int("node", int64(ev.Node)),
		obspkg.Int("gainMicro", int64(ev.Gain*1e6)),
		obspkg.Int("residualMicro", int64(ev.Residual*1e6)))
}

// countingObserver is the cheapest possible AllocObserver: it counts
// callbacks so BenchmarkObsOverhead measures the hook cost, not the
// consumer's.
type countingObserver struct{ calls int }

func (c *countingObserver) ObserveAllocation(socialads.AllocPhaseTimings) { c.calls++ }

// BenchmarkIndexBuild measures the cold index-build path alone — the
// reverse-BFS sampling plus the flat-arena (CSR) storage and one-pass
// inverted-index construction — with allocation counts reported. This is
// the hot path the arena refactor targets: run with -benchmem and compare
// allocs/op and B/op against the pointer-based [][]int32 layout (which paid
// one allocation per set plus per-node append lists).
func BenchmarkIndexBuild(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 5, Scale: 0.02})
	opts := socialads.TIRMOptions{Eps: 0.3, MinTheta: 5000, MaxTheta: 50000}
	b.ReportAllocs()
	b.ResetTimer()
	var mem int64
	for i := 0; i < b.N; i++ {
		idx, err := socialads.BuildIndex(inst, 42, opts)
		if err != nil {
			b.Fatal(err)
		}
		mem = idx.MemBytes()
	}
	b.ReportMetric(float64(mem)/1e6, "index-MB")
}

// BenchmarkGreedyIRIEAllocate measures a full GREEDY-IRIE run.
func BenchmarkGreedyIRIEAllocate(b *testing.B) {
	inst := gen.Flixster(gen.Options{Seed: 6, Scale: 0.02})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := socialads.AllocateGreedyIRIE(inst, socialads.IRIEOptions{}, socialads.GreedyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of reading a benchmark row (keeps godoc lively and guards the
// fmt import).
func ExampleFig1() {
	inst := socialads.Fig1Instance(0)
	out := socialads.Evaluate(inst, socialads.Fig1AllocationB(), 400000, 2)
	fmt.Printf("allocation B regret ≈ %.1f\n", out.TotalRegret)
	// Output: allocation B regret ≈ 2.7
}
