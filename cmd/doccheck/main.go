// Command doccheck fails (exit 1) when exported identifiers in the given
// package directories lack doc comments, or when a package has no package
// comment at all — the `make docs-check` gate that keeps `go doc` output
// complete as the API grows.
//
// Usage:
//
//	doccheck DIR [DIR...]
//
// Checked per directory (test files excluded): the package comment, every
// exported top-level func, every exported method on an exported type, and
// every exported type/var/const spec (a doc comment on the enclosing
// declaration group covers its specs, matching godoc's rendering).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		miss, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range miss {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one directory (sans _test.go files) and reports every
// missing doc comment as "path:line: message", sorted — pkgs and files are
// maps, and nondeterministic diagnostic order would make CI logs diff
// noisily in a repo that pins determinism everywhere else.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var miss []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			miss = append(miss, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, decl := range pkg.Files[name].Decls {
				miss = append(miss, checkDecl(fset, decl)...)
			}
		}
	}
	sort.Strings(miss)
	return miss, nil
}

func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var miss []string
	at := func(pos token.Pos, format string, args ...any) {
		miss = append(miss, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if d.Recv != nil {
			recv := receiverType(d.Recv)
			if recv == "" || !ast.IsExported(recv) {
				return nil
			}
			at(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
			return miss
		}
		at(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
	case *ast.GenDecl:
		// A doc comment on the group covers every spec (godoc renders it
		// above the whole block); otherwise each exported spec needs its
		// own doc or trailing comment.
		if d.Doc != nil {
			return nil
		}
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
					at(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
				}
			case *ast.ValueSpec:
				if sp.Doc != nil || sp.Comment != nil {
					continue
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						at(sp.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
					}
				}
			}
		}
	}
	return miss
}

// receiverType returns the receiver's base type name ("" if unnamed).
func receiverType(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
