// Command datagen generates a synthetic dataset analogue, prints its
// statistics (Table 1 style), and optionally writes the graph as an edge
// list that round-trips through graph.ReadEdgeList.
//
// Usage:
//
//	datagen -dataset dblp -scale 0.1 -out dblp.edges
//	datagen -dataset flixster -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "flixster", "dataset (flixster,epinions,dblp,livejournal)")
		scale   = flag.Float64("scale", 0.05, "dataset scale (1.0 = paper size)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "write the edge list to this file")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed uint64, out string) error {
	opts := gen.Options{Scale: scale, Seed: seed}
	var inst *core.Instance
	switch strings.ToLower(dataset) {
	case "flixster":
		inst = gen.Flixster(opts)
	case "epinions":
		inst = gen.Epinions(opts)
	case "dblp":
		inst = gen.DBLP(opts)
	case "livejournal", "lj":
		inst = gen.LiveJournal(opts)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	st := inst.G.Stats()
	fmt.Printf("dataset=%s scale=%.3f seed=%d\n", strings.ToUpper(dataset), scale, seed)
	fmt.Printf("nodes=%d edges=%d avg-outdeg=%.2f max-outdeg=%d max-indeg=%d\n",
		st.Nodes, st.Edges, st.AvgOutDeg, st.MaxOutDeg, st.MaxInDeg)
	fmt.Printf("ads=%d  budgets:", len(inst.Ads))
	for _, ad := range inst.Ads {
		fmt.Printf(" %.1f", ad.Budget)
	}
	fmt.Println()
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, inst.G); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}
