// Command adalloc runs a single ad-allocation end to end: generate (or
// load) a dataset, allocate seeds with the chosen algorithm, and print the
// per-advertiser outcome (revenue vs budget, regret, seed counts) from a
// neutral Monte Carlo evaluation.
//
// Usage:
//
//	adalloc -dataset flixster -algo tirm -scale 0.05 -kappa 1 -lambda 0
//	adalloc -dataset dblp -algo greedy-irie -ads 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/rrset"
)

func main() {
	var (
		dataset  = flag.String("dataset", "flixster", "dataset (flixster,epinions,dblp,livejournal,fig1)")
		algoName = flag.String("algo", "tirm", "algorithm (tirm,greedy-irie,myopic,myopic+)")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1.0 = paper size)")
		seed     = flag.Uint64("seed", 1, "master random seed")
		kappa    = flag.Int("kappa", 1, "attention bound κ for every user")
		lambda   = flag.Float64("lambda", 0, "seed penalty λ")
		ads      = flag.Int("ads", 0, "number of advertisers (0 = dataset default)")
		budget   = flag.Float64("budget", 0, "per-ad budget override (pre-scale)")
		evalRuns = flag.Int("evalruns", 2000, "Monte Carlo evaluation cascades")
		saveTo   = flag.String("save", "", "write the allocation (with provenance) to this JSON file")
		loadFrom = flag.String("load", "", "skip allocating; evaluate the allocation stored in this JSON file")
		workers  = flag.Int("workers", 0, "cap on RR-sampling worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	rrset.SetMaxWorkers(*workers)
	if err := run(*dataset, *algoName, *scale, *seed, *kappa, *lambda, *ads, *budget, *evalRuns, *saveTo, *loadFrom); err != nil {
		fmt.Fprintln(os.Stderr, "adalloc:", err)
		os.Exit(1)
	}
}

func run(dataset, algoName string, scale float64, seed uint64, kappa int, lambda float64, ads int, budget float64, evalRuns int, saveTo, loadFrom string) error {
	cfg := exp.Config{Seed: seed, Scale: scale, EvalRuns: evalRuns}

	opts := gen.Options{Scale: scale, Seed: seed + 1, Kappa: kappa, Lambda: lambda, NumAds: ads, BudgetOverride: budget}

	var realInst *core.Instance
	switch strings.ToLower(dataset) {
	case "fig1":
		realInst = gen.Fig1Instance(lambda)
	case "flixster":
		realInst = gen.Flixster(opts)
	case "epinions":
		realInst = gen.Epinions(opts)
	case "dblp":
		realInst = gen.DBLP(opts)
	case "livejournal", "lj":
		realInst = gen.LiveJournal(opts)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}

	var algo exp.Algo
	switch strings.ToLower(algoName) {
	case "tirm":
		algo = exp.AlgoTIRM
	case "greedy-irie", "irie":
		algo = exp.AlgoGreedyIRIE
	case "myopic":
		algo = exp.AlgoMyopic
	case "myopic+", "myopicplus":
		algo = exp.AlgoMyopicPlus
	default:
		return fmt.Errorf("unknown algorithm %q", algoName)
	}

	fmt.Printf("dataset=%s n=%d m=%d ads=%d κ=%d λ=%.2f total budget=%.1f\n",
		strings.ToUpper(dataset), realInst.G.N(), realInst.G.M(), len(realInst.Ads), kappa, lambda, realInst.TotalBudget())

	var alloc *core.Allocation
	if loadFrom != "" {
		f, err := os.Open(loadFrom)
		if err != nil {
			return err
		}
		loaded, meta, err := core.ReadAllocation(f, realInst)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", loadFrom, err)
		}
		alloc = loaded
		fmt.Printf("loaded allocation from %s (algo=%s seed=%d)\n", loadFrom, meta.Algo, meta.Seed)
	} else {
		var stats exp.RunStats
		var err error
		alloc, stats, err = exp.RunAlgo(realInst, algo, cfg)
		if err != nil {
			return err
		}
		if err := alloc.Validate(realInst); err != nil {
			return fmt.Errorf("%s produced an invalid allocation: %v", algo, err)
		}
		fmt.Printf("%s: %.2fs, %d seeds, %d distinct users", algo, stats.Wall.Seconds(), alloc.NumSeeds(), alloc.DistinctTargeted())
		if stats.SetsSampled > 0 {
			fmt.Printf(", %d RR-sets (%.1f MB)", stats.SetsSampled, float64(stats.MemBytes)/1e6)
		}
		fmt.Println()
	}
	if saveTo != "" {
		f, err := os.Create(saveTo)
		if err != nil {
			return err
		}
		meta := core.AllocationFile{
			Dataset: strings.ToLower(dataset), Seed: seed, Scale: scale,
			Kappa: kappa, Lambda: lambda, Algo: string(algo),
		}
		if err := core.WriteAllocation(f, realInst, alloc, meta); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved allocation to %s\n", saveTo)
	}
	out := exp.EvaluateAlloc(realInst, alloc, cfg)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ad\tbudget\trevenue\trev−budget\tregret\tseeds")
	for _, ao := range out.Ads {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f\t%.2f\t%d\n",
			ao.Name, ao.Budget, ao.Revenue, ao.Overshoot, ao.Regret, ao.Seeds)
	}
	tw.Flush()
	fmt.Printf("TOTAL regret %.2f (%.1f%% of budget)\n", out.TotalRegret, 100*out.RegretOverBudget)
	return nil
}
