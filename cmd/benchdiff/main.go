// Command benchdiff renders a benchstat-style delta table between two
// benchmark runs captured as `go test -json` (test2json) streams — the
// format `make bench` writes to BENCH_index.json. It powers
// `make bench-compare`, which benchmarks HEAD and diffs it against the
// committed baseline so a PR's hot-path effect is visible at a glance:
//
//	benchdiff [-max-regress pct] OLD.json NEW.json
//
// For every benchmark present in either stream it prints ns/op, B/op, and
// allocs/op side by side with the relative change; benchmarks missing from
// one side are listed as added/removed. By default the tool never fails on
// regressions (the comparison step is deliberately non-gating in CI); it
// exits non-zero only for unreadable or unparseable inputs. With
// -max-regress set, any benchmark whose ns/op regressed by more than that
// percentage additionally fails the run with exit code 3 — the opt-in
// `make bench-gate` target CI can use to hard-fail hot-path regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's record shape benchdiff needs.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// result holds one benchmark's parsed metrics.
type result struct {
	name   string
	nsOp   float64
	bOp    float64
	allocs float64
	hasMem bool
}

// gomaxprocsSuffix strips the "-N" GOMAXPROCS suffix from a benchmark
// name (and only that — names like ".../v1" keep their digits).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// benchLine matches a `testing.B` result line after test2json unescaping,
// e.g. "BenchmarkFoo-8   120  9532 ns/op  512 B/op  12 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

// parseStream extracts benchmark results from one test2json file.
func parseStream(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]result{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: not a test2json stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		// A result line can arrive split across events ("BenchmarkFoo \t" then
		// the numbers); stitch by looking only at lines that carry "ns/op".
		text := strings.TrimSpace(strings.ReplaceAll(ev.Output, "\t", " "))
		if !strings.Contains(text, "ns/op") {
			continue
		}
		name := ev.Test
		m := benchLine.FindStringSubmatch(text)
		if m == nil {
			// Continuation line: "   120  9532 ns/op ..." with the name in
			// ev.Test only.
			m = regexp.MustCompile(`^\d+\s+([0-9.e+]+) ns/op(.*)$`).FindStringSubmatch(text)
			if m == nil || name == "" {
				continue
			}
			m = []string{m[0], name, m[1], m[2]}
		} else if name == "" {
			name = gomaxprocsSuffix.ReplaceAllString(m[1], "")
		}
		r := result{name: name}
		r.nsOp, _ = strconv.ParseFloat(m[2], 64)
		rest := m[3]
		if bm := regexp.MustCompile(`([0-9.e+]+) B/op`).FindStringSubmatch(rest); bm != nil {
			r.bOp, _ = strconv.ParseFloat(bm[1], 64)
			r.hasMem = true
		}
		if am := regexp.MustCompile(`([0-9.e+]+) allocs/op`).FindStringSubmatch(rest); am != nil {
			r.allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		out[name] = r
	}
	return out, sc.Err()
}

// delta renders "old → new (±x%)" for one metric.
func delta(old, new float64, unit string) string {
	if old == 0 {
		return fmt.Sprintf("%s → %s %s", human(old), human(new), unit)
	}
	pct := 100 * (new - old) / old
	return fmt.Sprintf("%s → %s %s (%+.1f%%)", human(old), human(new), unit, pct)
}

// human formats a metric value compactly.
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

func main() {
	maxRegress := flag.Float64("max-regress", 0,
		"fail (exit 3) when any benchmark's ns/op regressed by more than this percentage (0 = never fail)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldRes, err := parseStream(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newRes, err := parseStream(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	names := map[string]bool{}
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Printf("benchdiff: %s vs %s\n", oldPath, newPath)
	var regressed []string
	for _, n := range sorted {
		o, haveOld := oldRes[n]
		nw, haveNew := newRes[n]
		switch {
		case !haveOld:
			fmt.Printf("  %-55s added: %.0f ns/op\n", n, nw.nsOp)
		case !haveNew:
			fmt.Printf("  %-55s removed (was %.0f ns/op)\n", n, o.nsOp)
		default:
			fmt.Printf("  %-55s %s\n", n, delta(o.nsOp, nw.nsOp, "ns/op"))
			if o.hasMem || nw.hasMem {
				fmt.Printf("  %-55s %s, %s\n", "",
					delta(o.bOp, nw.bOp, "B/op"), delta(o.allocs, nw.allocs, "allocs/op"))
			}
			if *maxRegress > 0 && o.nsOp > 0 {
				if pct := 100 * (nw.nsOp - o.nsOp) / o.nsOp; pct > *maxRegress {
					regressed = append(regressed, fmt.Sprintf("%s (+%.1f%% ns/op)", n, pct))
				}
			}
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past the %.0f%% gate:\n", len(regressed), *maxRegress)
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(3)
	}
}
