// Command tracedump inspects the span traces an adserver or adshard
// retains (tail-based: slow, errored, retried, failed-over, or explicitly
// sampled requests; see docs/OBSERVABILITY.md). Without a trace id it
// lists the retained traces newest-first; with one it renders the full
// span tree as an ASCII waterfall — one bar per span, scaled against the
// trace duration, with retry/failover/commit events inlined at their
// offsets.
//
// Usage:
//
//	tracedump -addr http://localhost:8080                 # list retained traces
//	tracedump -addr http://localhost:8080 -min-ms 100     # ... at least 100ms long
//	tracedump -addr http://localhost:8080 -error          # ... with a failed span
//	tracedump -addr http://localhost:8080 <trace-id>      # waterfall one trace
//
// Force a request into the store to inspect it:
//
//	curl -s -H 'X-Trace-Id: my-debug-run' -H 'X-Trace-Flags: 1' \
//	     -d "$BODY" http://localhost:8080/allocate
//	tracedump -addr http://localhost:8080 my-debug-run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "adserver or adshard base URL")
		minMS   = flag.Int("min-ms", 0, "list only traces at least this many milliseconds long")
		onlyErr = flag.Bool("error", false, "list only traces containing a failed span")
		limit   = flag.Int("limit", 20, "cap the listing (0 = all retained traces)")
		width   = flag.Int("width", 48, "waterfall gutter width in characters")
	)
	flag.Parse()
	var err error
	switch flag.NArg() {
	case 0:
		err = list(*addr, *minMS, *onlyErr, *limit)
	case 1:
		err = waterfall(*addr, flag.Arg(0), *width)
	default:
		err = fmt.Errorf("at most one trace id, got %d args", flag.NArg())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

// get fetches one trace-store URL and decodes the JSON body into out.
func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// list prints retained-trace summaries newest-first, one per line.
func list(addr string, minMS int, onlyErr bool, limit int) error {
	url := fmt.Sprintf("%s/debug/traces?min_ms=%d&limit=%d", addr, minMS, limit)
	if onlyErr {
		url += "&error=1"
	}
	var sums []obs.TraceSummary
	if err := get(url, &sums); err != nil {
		return err
	}
	if len(sums) == 0 {
		fmt.Println("no retained traces match")
		return nil
	}
	fmt.Printf("%-34s %-22s %-12s %10s %6s %-8s %s\n",
		"TRACE", "ROOT", "START", "DURATION", "SPANS", "REASON", "ERR")
	for _, s := range sums {
		errMark := ""
		if s.Error {
			errMark = "!"
		}
		fmt.Printf("%-34s %-22s %-12s %10s %6d %-8s %s\n",
			s.ID, s.Root,
			time.Unix(0, s.StartUnixNano).Format("15:04:05.000"),
			fmtDur(s.DurNs), s.Spans, s.Reason, errMark)
	}
	return nil
}

// waterfall renders one trace's span tree: depth-first in start order,
// each span a bar positioned and scaled against the whole trace.
func waterfall(addr, id string, width int) error {
	if width < 10 {
		width = 10
	}
	var td obs.TraceData
	if err := get(addr+"/debug/traces/"+id, &td); err != nil {
		return err
	}
	fmt.Printf("trace %s  root=%s  start=%s  dur=%s  spans=%d  retained=%s\n\n",
		td.ID, td.Root,
		time.Unix(0, td.StartUnixNano).Format("15:04:05.000000"),
		fmtDur(td.DurNs), len(td.Spans), td.Reason)

	kids := map[string][]obs.SpanData{}
	byID := map[string]bool{}
	for _, s := range td.Spans {
		byID[s.ID] = true
	}
	var roots []obs.SpanData
	for _, s := range td.Spans {
		// A span whose parent never landed in the store (dropped by the
		// per-trace span cap) still renders, promoted to the top level.
		if s.Parent == "" || !byID[s.Parent] {
			roots = append(roots, s)
		} else {
			kids[s.Parent] = append(kids[s.Parent], s)
		}
	}
	nameWidth := 0
	for _, s := range td.Spans {
		if n := len(s.Name) + 1; n > nameWidth {
			nameWidth = n
		}
	}
	if nameWidth < 20 {
		nameWidth = 20
	}
	base := int64(0)
	if len(roots) > 0 {
		sortSpans(roots)
		base = roots[0].StartNs
	}
	total := td.DurNs
	if total <= 0 {
		total = 1
	}
	for _, r := range roots {
		printSpan(r, kids, 0, base, total, nameWidth, width)
	}
	return nil
}

// printSpan emits one span row (indent, name, duration, bar, attrs, error)
// plus its events, then recurses into children in start order.
func printSpan(s obs.SpanData, kids map[string][]obs.SpanData, depth int, base, total int64, nameWidth, width int) {
	indent := strings.Repeat("  ", depth)
	label := indent + s.Name
	if len(label) > nameWidth {
		label = label[:nameWidth]
	}
	fmt.Printf("%-*s %10s  |%s|%s%s\n",
		nameWidth, label, fmtDur(s.DurNs),
		bar(s.StartNs-base, s.DurNs, total, width),
		attrSuffix(s.Attrs, s.Strs),
		errSuffix(s.Error))
	for _, ev := range s.Events {
		fmt.Printf("%-*s %10s   @ %s%s\n",
			nameWidth, indent+"  * "+ev.Name, "+"+fmtDur(ev.AtNs),
			"", attrSuffix(ev.Attrs, nil))
	}
	children := kids[s.ID]
	sortSpans(children)
	for _, c := range children {
		printSpan(c, kids, depth+1, base, total, nameWidth, width)
	}
}

// sortSpans orders spans by start offset, then name for equal starts (the
// store already sorts, but child buckets are rebuilt here).
func sortSpans(spans []obs.SpanData) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].Name < spans[j].Name
	})
}

// bar renders a span's interval as '#' characters inside a width-wide
// gutter spanning the whole trace. Every live interval gets at least one
// '#' so instant spans stay visible.
func bar(offset, dur, total int64, width int) string {
	if offset < 0 {
		offset = 0
	}
	lead := int(offset * int64(width) / total)
	fill := int(dur * int64(width) / total)
	if fill < 1 {
		fill = 1
	}
	if lead >= width {
		lead = width - 1
	}
	if lead+fill > width {
		fill = width - lead
	}
	return strings.Repeat(" ", lead) + strings.Repeat("#", fill) +
		strings.Repeat(" ", width-lead-fill)
}

// attrSuffix formats integer and string attributes as "  k=v k=v", keys
// sorted, strings first (they are the scarce, human-picked ones).
func attrSuffix(attrs map[string]int64, strs map[string]string) string {
	if len(attrs) == 0 && len(strs) == 0 {
		return ""
	}
	var parts []string
	for _, k := range sortedKeys(strs) {
		parts = append(parts, k+"="+strs[k])
	}
	for _, k := range sortedKeys(attrs) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, attrs[k]))
	}
	return "  " + strings.Join(parts, " ")
}

// errSuffix marks a failed span with its recorded error.
func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return "  ERROR: " + msg
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtDur renders nanoseconds with ~3 significant digits (12.3ms, 1.20s).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
