// Command adserver runs the allocation service: an HTTP/JSON server that
// keeps per-dataset RR-set indexes hot in memory (and optionally on disk)
// so that repeated allocations — new budgets, new λ/κ, what-if ad subsets —
// pay only the cheap greedy selection instead of re-sampling. Campaigns
// are live: advertisers can join and leave a cached index, and recorded
// engagement spend lets re-allocations target residual budgets.
//
// Usage:
//
//	adserver -addr :8080 -snapshots ./snapshots \
//	         -preload flixster:1:0.02,dblp:1:0.02:5
//
// Endpoints (see internal/serve and docs/API.md):
//
//	POST   /allocate    {"dataset":"flixster","seed":1,"scale":0.02,
//	                     "lambda":0.5,"opts":{"eps":0.3,"minTheta":5000}}
//	POST   /evaluate    {"dataset":"flixster","seed":1,"scale":0.02,
//	                     "seeds":[[3,17],[],...],"runs":2000}
//	POST   /ads         {"dataset":"flixster","seed":1,"scale":0.02,
//	                     "ad":{"name":"promo","budget":25,"cpe":5,
//	                           "ctp":0.02,"template":0}}
//	DELETE /ads/promo?dataset=flixster&seed=1&scale=0.02
//	POST   /spend       {"dataset":"flixster","seed":1,"scale":0.02,
//	                     "spend":{"ad00":12.5}}
//	GET    /datasets, /stats, /healthz, /metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/rrset"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		snapshots = flag.String("snapshots", "", "directory for index snapshots (empty = in-memory only)")
		preload   = flag.String("preload", "", "comma-separated dataset:seed:scale[:ads] indexes to build at startup")
		maxScale  = flag.Float64("maxscale", serve.DefaultMaxScale, "largest dataset scale a request may ask for")
		maxTheta  = flag.Int("maxtheta", serve.DefaultMaxTheta, "server-side cap on per-ad RR sample size")
		workers   = flag.Int("workers", 0, "cap on RR-sampling worker goroutines (0 = GOMAXPROCS); pin it so index builds don't saturate every core of a serving host")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU, heap, allocs, goroutine profiles; see EXPERIMENTS.md for a hot-path profiling walkthrough)")
		shards    = flag.String("shards", "", "comma-separated adshard addresses (host:port, slot-major: with -replicas R, each slot's R replicas are consecutive): serve /allocate by distributed scatter-gather over this cluster instead of a local index")
		replicas  = flag.Int("replicas", 1, "replication factor R in coordinator mode: every partition range is served by R adshard replicas with automatic failover")
		rpcTO     = flag.Duration("rpc-timeout", 30*time.Second, "per-attempt deadline for fast shard RPCs in coordinator mode (sampling-heavy ops get 10x)")
		probeIvl  = flag.Duration("probe-interval", 15*time.Second, "background replica health probe period in coordinator mode (0 = probe only on /healthz)")
		kernel    = flag.String("kernel", "", "coverage kernel for requests that don't pick their own: auto (density heuristic, the default), sparse, or bitset — changes sweep cost, never allocations")
		traceCap  = flag.Int("trace-capacity", 0, "retained-trace ring size for /debug/traces (0 = default 256)")
		traceLat  = flag.Duration("trace-latency", 0, "tail-retention threshold: traces at least this slow are always kept (0 = default 250ms)")
		traceNth  = flag.Int("trace-sample", 0, "head-sample 1 in N of the traces no tail rule claims (0 = default 16)")
	)
	flag.Parse()
	rrset.SetMaxWorkers(*workers)
	if err := checkKernelFlag(*kernel); err != nil {
		fmt.Fprintln(os.Stderr, "adserver:", err)
		os.Exit(2)
	}
	opts := serve.Options{
		SnapshotDir:   *snapshots,
		MaxScale:      *maxScale,
		MaxTheta:      *maxTheta,
		DefaultKernel: *kernel,
		Replicas:      *replicas,
		RPCTimeout:    *rpcTO,
		ProbeInterval: *probeIvl,
		Tracing: obs.TracerConfig{
			Capacity:         *traceCap,
			LatencyThreshold: *traceLat,
			SampleEvery:      *traceNth,
		},
	}
	if err := run(*addr, *preload, *pprofOn, *shards, opts); err != nil {
		fmt.Fprintln(os.Stderr, "adserver:", err)
		os.Exit(1)
	}
}

// checkKernelFlag rejects bad -kernel values at startup rather than per
// request (the names mirror core.Request.Kernel).
func checkKernelFlag(kernel string) error {
	switch kernel {
	case "", "auto", "sparse", "bitset":
		return nil
	}
	return fmt.Errorf("unknown -kernel %q (want auto, sparse, or bitset)", kernel)
}

func run(addr, preload string, pprofOn bool, shards string, opts serve.Options) error {
	if shards != "" {
		for _, a := range strings.Split(shards, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Shards = append(opts.Shards, a)
			}
		}
	}
	srv := serve.New(opts)
	if len(opts.Shards) > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := srv.ConnectShards(ctx)
		cancel()
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	if preload != "" {
		for _, spec := range strings.Split(preload, ",") {
			p, err := serve.WarmSpec(strings.TrimSpace(spec))
			if err != nil {
				return err
			}
			log.Printf("adserver: preloading %s", p.Key())
			if err := srv.Warm(p); err != nil {
				return fmt.Errorf("preload %s: %w", p.Key(), err)
			}
		}
	}

	handler := srv.Handler()
	if pprofOn {
		// Profiling rides the serving mux behind an explicit opt-in flag:
		// pprof exposes process internals, so an open production endpoint
		// should not mount it by accident.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("adserver: pprof enabled at /debug/pprof/")
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("adserver: listening on %s", addr)
		errc <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("adserver: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}
