// Command adshard runs one shard of a partitioned allocation cluster: it
// generates the named dataset locally (instances never cross the wire),
// samples exactly its slice of every ad's deterministic RR block stream,
// and answers the coordinator's coverage/marginal-gain/commit RPCs over
// HTTP/JSON (see internal/shard). Point an adserver at the full cluster
// with -shards to serve distributed allocations.
//
// Usage (a 2-shard cluster plus coordinator):
//
//	adshard  -addr :9101 -dataset flixster -seed 1 -scale 0.02 -shard 0 -shards 2
//	adshard  -addr :9102 -dataset flixster -seed 1 -scale 0.02 -shard 1 -shards 2
//	adserver -addr :8080 -shards localhost:9101,localhost:9102
//
// Every shard of a cluster must be launched with identical dataset
// parameters and -shards K; the coordinator refuses mismatched clusters
// (instance fingerprints, K, and slot ids are all validated).
//
// With -snapshots set, the shard persists its slice in the index snapshot
// format (v4, which carries the partition manifest) and restarts warm;
// a snapshot taken for a different slice or instance refuses to load.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rrset"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		addr      = flag.String("addr", ":9101", "listen address")
		dataset   = flag.String("dataset", "flixster", "dataset generator (see adserver /datasets)")
		seed      = flag.Uint64("seed", 1, "instance + stream seed (must match the whole cluster)")
		scale     = flag.Float64("scale", 0.02, "dataset scale")
		ads       = flag.Int("ads", 0, "advertiser count override (0 = dataset default)")
		shardID   = flag.Int("shard", 0, "this shard's slot in [0, shards)")
		numShards = flag.Int("shards", 1, "cluster size K")
		snapshots = flag.String("snapshots", "", "directory for shard snapshots (empty = in-memory only)")
		workers   = flag.Int("workers", 0, "cap on RR-sampling worker goroutines (0 = GOMAXPROCS)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU, heap, allocs, goroutine profiles; see EXPERIMENTS.md for a hot-path profiling walkthrough)")
		kernel    = flag.String("kernel", "", "coverage kernel for runs whose StartRequest leaves the choice open: auto (density heuristic, the default), sparse, or bitset — changes local sweep cost, never the reply integers")
		rpcTO     = flag.Duration("rpc-timeout", 0, "server-side bound on a single RPC handler (http.Server write timeout; 0 = unbounded — sampling-heavy ops can legitimately run long, coordinators bound their side with per-attempt deadlines)")
		traceCap  = flag.Int("trace-capacity", 0, "retained-trace ring size for /debug/traces (0 = default 256)")
		traceLat  = flag.Duration("trace-latency", 0, "tail-retention threshold: traces at least this slow are always kept (0 = default 250ms)")
		traceNth  = flag.Int("trace-sample", 0, "head-sample 1 in N of the traces no tail rule claims (0 = default 16)")
	)
	flag.Parse()
	rrset.SetMaxWorkers(*workers)
	switch *kernel {
	case "", "auto", "sparse", "bitset":
	default:
		fmt.Fprintf(os.Stderr, "adshard: unknown -kernel %q (want auto, sparse, or bitset)\n", *kernel)
		os.Exit(2)
	}
	tracing := obs.TracerConfig{
		Capacity:         *traceCap,
		LatencyThreshold: *traceLat,
		SampleEvery:      *traceNth,
	}
	if err := run(*addr, *dataset, *seed, *scale, *ads, *shardID, *numShards, *snapshots, *pprofOn, *kernel, *rpcTO, tracing); err != nil {
		fmt.Fprintln(os.Stderr, "adshard:", err)
		os.Exit(1)
	}
}

func run(addr, dataset string, seed uint64, scale float64, ads, shardID, numShards int, snapshots string, pprofOn bool, kernel string, rpcTimeout time.Duration, tracing obs.TracerConfig) error {
	p, err := shard.NewPartitioner(numShards)
	if err != nil {
		return err
	}
	if shardID < 0 || shardID >= numShards {
		return fmt.Errorf("shard %d out of range [0, %d)", shardID, numShards)
	}
	part := p.Range(shardID)
	params := serve.InstanceParams{Dataset: dataset, Seed: seed, Scale: scale, NumAds: ads}
	log.Printf("adshard: generating %s (slice %d/%d)", params.Key(), shardID, numShards)
	roster, err := serve.BuildDataset(params)
	if err != nil {
		return err
	}

	var s *shard.Shard
	snapPath := ""
	if snapshots != "" {
		snapPath = filepath.Join(snapshots, fmt.Sprintf("%s-of-%d-%d.adix",
			sanitize(params.Key()), numShards, shardID))
	}
	if snapPath != "" {
		if f, err := os.Open(snapPath); err == nil {
			idx, lerr := core.LoadShardIndexSnapshot(roster, part, f)
			f.Close()
			if lerr == nil {
				if s, lerr = shard.NewShardFromIndex(roster, idx); lerr == nil {
					log.Printf("adshard: loaded slice from %s (%.1f MB)", snapPath, float64(idx.MemBytes())/1e6)
				}
			}
			if lerr != nil {
				log.Printf("adshard: snapshot %s unusable (%v); rebuilding", snapPath, lerr)
				s = nil
			}
		}
	}
	if s == nil {
		if s, err = shard.NewShard(roster, 0, seed, part); err != nil {
			return err
		}
	}
	s.Dataset = shard.DatasetParams{Name: dataset, Seed: seed, Scale: scale, NumAds: ads}
	s.Logf = log.Printf
	s.DefaultKernel = kernel
	s.Tracing = tracing

	handler := s.Handler()
	if pprofOn {
		// Profiling rides the serving mux behind an explicit opt-in flag:
		// pprof exposes process internals, so an open production endpoint
		// should not mount it by accident.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("adshard: pprof enabled at /debug/pprof/")
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      rpcTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("adshard: slice %d/%d of %s listening on %s", shardID, numShards, params.Key(), addr)
		errc <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("adshard: %v, draining and shutting down", sig)
		s.Drain()
		saveSnapshot(s, snapshots, snapPath)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}

// saveSnapshot persists the shard's slice (write temp + rename, so a crash
// never leaves a torn file). Failures are logged, never fatal.
func saveSnapshot(s *shard.Shard, dir, path string) {
	if path == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("adshard: snapshot dir: %v", err)
		return
	}
	tmp, err := os.CreateTemp(dir, ".adix-*")
	if err != nil {
		log.Printf("adshard: snapshot temp: %v", err)
		return
	}
	err = s.Index().WriteSnapshot(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		log.Printf("adshard: snapshot %s: %v", path, err)
		return
	}
	log.Printf("adshard: wrote snapshot %s", path)
}

// sanitize maps a cache key onto a filesystem-safe name (same rule as the
// serve layer's snapshot paths).
func sanitize(key string) string {
	out := make([]rune, 0, len(key))
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
