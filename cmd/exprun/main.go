// Command exprun regenerates the paper's tables and figures from the
// synthetic dataset analogues. Each experiment prints the same rows/series
// the paper reports (see EXPERIMENTS.md for the recorded comparison).
//
// Usage:
//
//	exprun -exp fig3 -dataset flixster [-scale 0.05] [-seed 1] [-evalruns 2000] [-v]
//	exprun -exp all -quick
//
// Experiments: table1 table2 fig1 fig3 fig4 fig5 table3 fig6h fig6b table4
// boost all. Datasets: flixster epinions dblp livejournal (where relevant).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment id (table1,table2,fig1,fig3,fig4,fig5,table3,fig6h,fig6b,table4,boost,soft,all)")
		dataset  = flag.String("dataset", "", "dataset (flixster,epinions,dblp,livejournal); default per experiment")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1.0 = paper size)")
		seed     = flag.Uint64("seed", 1, "master random seed")
		evalRuns = flag.Int("evalruns", 2000, "Monte Carlo evaluation cascades (paper: 10000)")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		format   = flag.String("format", "table", "output format (table|json|csv)")
		soft     = flag.Bool("soft", false, "run TIRM with the soft-coverage extension (TIRM-W)")
		depth    = flag.Int("depth", 1, "TIRM candidate depth (1 = paper's Algorithm 3)")
		verbose  = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()
	outFormat, err := exp.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exprun:", err)
		os.Exit(1)
	}

	cfg := exp.Config{
		Seed:     *seed,
		Scale:    *scale,
		EvalRuns: *evalRuns,
		Verbose:  *verbose,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format, args...)
		},
	}
	cfg.TIRM.SoftCoverage = *soft
	cfg.TIRM.CandidateDepth = *depth
	if err := run(strings.ToLower(*expName), strings.ToLower(*dataset), cfg, *quick, outFormat); err != nil {
		fmt.Fprintln(os.Stderr, "exprun:", err)
		os.Exit(1)
	}
}

func parseDataset(name string, def exp.Dataset) (exp.Dataset, error) {
	switch name {
	case "":
		return def, nil
	case "flixster":
		return exp.Flixster, nil
	case "epinions":
		return exp.Epinions, nil
	case "dblp":
		return exp.DBLP, nil
	case "livejournal", "lj":
		return exp.LiveJournal, nil
	}
	return "", fmt.Errorf("unknown dataset %q", name)
}

func run(name, dsName string, cfg exp.Config, quick bool, format exp.Format) error {
	w := os.Stdout
	hs := []int{1, 5, 10, 15, 20}
	if quick {
		hs = []int{1, 5}
	}
	switch name {
	case "table1":
		rows, err := exp.Table1(cfg)
		if err != nil {
			return err
		}
		if format == exp.FormatJSON {
			return exp.WriteJSON(w, "table1", rows)
		}
		exp.PrintTable1(w, rows)
	case "table2":
		rows, err := exp.Table2(cfg)
		if err != nil {
			return err
		}
		if format == exp.FormatJSON {
			return exp.WriteJSON(w, "table2", rows)
		}
		exp.PrintTable2(w, rows)
	case "fig1":
		rows, err := exp.Fig1(cfg)
		if err != nil {
			return err
		}
		if format == exp.FormatJSON {
			return exp.WriteJSON(w, "fig1", rows)
		}
		exp.PrintFig1(w, rows)
	case "fig3", "fig4", "table3", "fig5":
		ds, err := parseDataset(dsName, exp.Flixster)
		if err != nil {
			return err
		}
		switch name {
		case "fig3":
			rows, err := exp.Fig3(ds, cfg)
			if err != nil {
				return err
			}
			switch format {
			case exp.FormatJSON:
				return exp.WriteJSON(w, "fig3", rows)
			case exp.FormatCSV:
				return exp.WriteQualityCSV(w, rows)
			}
			exp.PrintQuality(w, fmt.Sprintf("FIG3 %s: total regret vs κ", ds), rows, exp.RegretColumn)
		case "fig4":
			rows, err := exp.Fig4(ds, cfg)
			if err != nil {
				return err
			}
			switch format {
			case exp.FormatJSON:
				return exp.WriteJSON(w, "fig4", rows)
			case exp.FormatCSV:
				return exp.WriteQualityCSV(w, rows)
			}
			exp.PrintQuality(w, fmt.Sprintf("FIG4 %s: total regret vs λ", ds), rows, exp.RegretColumn)
		case "table3":
			rows, err := exp.Table3(ds, cfg)
			if err != nil {
				return err
			}
			switch format {
			case exp.FormatJSON:
				return exp.WriteJSON(w, "table3", rows)
			case exp.FormatCSV:
				return exp.WriteQualityCSV(w, rows)
			}
			exp.PrintQuality(w, fmt.Sprintf("TABLE3 %s: distinct targeted nodes vs κ (λ=0)", ds), rows, exp.TargetedColumn)
		case "fig5":
			rows, err := exp.Fig5(ds, cfg)
			if err != nil {
				return err
			}
			switch format {
			case exp.FormatJSON:
				return exp.WriteJSON(w, "fig5", rows)
			case exp.FormatCSV:
				return exp.WriteFig5CSV(w, rows)
			}
			exp.PrintFig5(w, rows)
		}
	case "fig6h", "table4":
		ds, err := parseDataset(dsName, exp.DBLP)
		if err != nil {
			return err
		}
		algos := []exp.Algo{exp.AlgoTIRM, exp.AlgoGreedyIRIE}
		if ds == exp.LiveJournal {
			// The paper could not finish GREEDY-IRIE on LiveJournal for h≥5.
			algos = []exp.Algo{exp.AlgoTIRM}
		}
		rows, err := exp.Fig6VaryH(ds, cfg, hs, algos)
		if err != nil {
			return err
		}
		switch format {
		case exp.FormatJSON:
			return exp.WriteJSON(w, name, rows)
		case exp.FormatCSV:
			return exp.WriteScaleCSV(w, rows)
		}
		title := fmt.Sprintf("FIG6 %s: running time vs number of advertisers", ds)
		if name == "table4" {
			title = fmt.Sprintf("TABLE4 %s: memory usage vs number of advertisers", ds)
		}
		exp.PrintScale(w, title, rows)
	case "fig6b":
		ds, err := parseDataset(dsName, exp.DBLP)
		if err != nil {
			return err
		}
		algos := []exp.Algo{exp.AlgoTIRM, exp.AlgoGreedyIRIE}
		if ds == exp.LiveJournal {
			algos = []exp.Algo{exp.AlgoTIRM}
		}
		var budgets []float64
		if quick {
			if ds == exp.LiveJournal {
				budgets = []float64{50000, 150000}
			} else {
				budgets = []float64{5000, 15000}
			}
		}
		rows, err := exp.Fig6VaryBudget(ds, cfg, budgets, algos)
		if err != nil {
			return err
		}
		switch format {
		case exp.FormatJSON:
			return exp.WriteJSON(w, "fig6b", rows)
		case exp.FormatCSV:
			return exp.WriteScaleCSV(w, rows)
		}
		exp.PrintScale(w, fmt.Sprintf("FIG6 %s: running time vs per-ad budget (h=5)", ds), rows)
	case "soft":
		ds, err := parseDataset(dsName, exp.Flixster)
		if err != nil {
			return err
		}
		rows, err := exp.SoftAblation(ds, cfg)
		if err != nil {
			return err
		}
		if format == exp.FormatJSON {
			return exp.WriteJSON(w, "soft", rows)
		}
		exp.PrintSoft(w, rows)
	case "boost":
		ds, err := parseDataset(dsName, exp.Flixster)
		if err != nil {
			return err
		}
		rows, err := exp.Boost(ds, cfg, nil)
		if err != nil {
			return err
		}
		if format == exp.FormatJSON {
			return exp.WriteJSON(w, "boost", rows)
		}
		exp.PrintBoost(w, rows)
	case "all":
		order := []string{"table1", "table2", "fig1", "fig3", "fig4", "fig5", "table3", "fig6h", "fig6b", "table4", "boost", "soft"}
		for _, e := range order {
			if err := run(e, dsName, cfg, quick, format); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
