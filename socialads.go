// Package socialads is a from-scratch Go implementation of
//
//	"Viral Marketing Meets Social Advertising: Ad Allocation with Minimum
//	Regret" — Aslay, Lu, Bonchi, Goyal, Lakshmanan. PVLDB 8(7), 2015.
//
// The host of a social platform must allocate promoted posts (ads) to
// users. Ads propagate virally under a topic-aware independent-cascade
// model with click-through probabilities (TIC-CTP); every advertiser pays
// cost-per-engagement up to a budget B_i; users tolerate at most κ_u
// promoted ads. The host wants every campaign's expected revenue to land
// exactly on its budget: both undershooting (lost revenue) and overshooting
// (free service) cause regret
//
//	R_i(S_i) = |B_i − Π_i(S_i)| + λ·|S_i|,     R(S) = Σ_i R_i(S_i).
//
// REGRET-MINIMIZATION is NP-hard to approximate within any factor
// (Theorem 1); this package provides the paper's greedy algorithm with
// budget-relative guarantees (Algorithm 1, Theorems 2–4) and its scalable
// RR-set instantiation TIRM (Algorithm 2), plus every baseline the paper
// evaluates (MYOPIC, MYOPIC+, GREEDY-IRIE), the TIM influence-maximization
// substrate, Monte Carlo and exact evaluators, and synthetic analogues of
// the four evaluation datasets.
//
// Quick start:
//
//	inst := socialads.NewFlixster(socialads.DatasetOptions{Seed: 1, Scale: 0.05})
//	res, err := socialads.AllocateTIRM(inst, 42, socialads.TIRMOptions{Eps: 0.2})
//	if err != nil { ... }
//	out := socialads.Evaluate(inst, res.Alloc, 10000, 7)
//	fmt.Printf("regret: %.1f (%.1f%% of budget)\n", out.TotalRegret, 100*out.RegretOverBudget)
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package socialads

import (
	"io"

	"repro/internal/bandit"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/irie"
	"repro/internal/rrset"
	"repro/internal/sim"
	"repro/internal/tim"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// Core problem types (see internal/core for full documentation).
type (
	// Graph is the directed social graph; arc (u,v) means v follows u.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and freezes them into a Graph.
	GraphBuilder = graph.Builder
	// Instance is a full REGRET-MINIMIZATION problem (Problem 1).
	Instance = core.Instance
	// Ad is one advertiser: budget, CPE, and propagation parameters.
	Ad = core.Ad
	// ItemParams carries an ad's mixed edge probabilities and CTPs.
	ItemParams = topic.ItemParams
	// TopicDist is a distribution γ_i over the K latent topics.
	TopicDist = topic.Dist
	// TopicModel stores per-topic edge probabilities and mixes them (Eq. 1).
	TopicModel = topic.Model
	// Allocation is a seed-set assignment S = (S_1, …, S_h).
	Allocation = core.Allocation
	// AttentionBounds exposes per-user attention bounds κ_u.
	AttentionBounds = core.AttentionBounds
	// ConstKappa is a uniform attention bound.
	ConstKappa = core.ConstKappa
	// VecKappa is a per-user attention bound vector.
	VecKappa = core.VecKappa

	// TIRMOptions configures the scalable allocator (Algorithm 2).
	TIRMOptions = core.TIRMOptions
	// TIRMResult reports TIRM's allocation and sampling statistics.
	TIRMResult = core.TIRMResult
	// Index is a reusable per-ad RR-set sample: build once, allocate many
	// times (DESIGN.md §6).
	Index = core.Index
	// AllocRequest parameterizes one selection run against an Index.
	AllocRequest = core.Request
	// AllocWorkspacePool recycles the per-request selection state of
	// AllocateFromIndex (set it as AllocRequest.Pool); reuse makes warm
	// allocations nearly allocation-free without changing their results.
	AllocWorkspacePool = core.WorkspacePool
	// AllocBatchResult is one request's outcome in an AllocateBatch call:
	// exactly one of Res or Err is set.
	AllocBatchResult = core.BatchResult
	// AllocPhase names one phase of a selection run — estimation, CELF
	// scan, commit, or sample growth (see AllocObserver).
	AllocPhase = core.AllocPhase
	// AllocPhaseTimings reports per-phase wall time and the round count of
	// one selection run.
	AllocPhaseTimings = core.PhaseTimings
	// AllocObserver receives per-phase timings after each selection run
	// (set one as AllocRequest.Observer); a nil observer costs nothing —
	// no clocks are read and the allocation result is unchanged either way.
	AllocObserver = core.AllocObserver
	// AllocCommitEvent describes one committed selection round — the
	// chosen ad, seed node, marginal gain, and the ad's residual budget
	// afterwards (see AllocExplainObserver).
	AllocCommitEvent = core.CommitEvent
	// AllocExplainObserver extends AllocObserver with a per-round commit
	// callback; it fires only when AllocRequest.Explain is set and the
	// request's observer implements it, and never changes the
	// allocation.
	AllocExplainObserver = core.ExplainObserver
	// GreedyOptions configures Algorithm 1.
	GreedyOptions = core.GreedyOptions
	// GreedyResult reports Algorithm 1's allocation.
	GreedyResult = core.GreedyResult
	// IRIEOptions tunes the GREEDY-IRIE baseline's spread heuristic.
	IRIEOptions = irie.Options

	// Outcome is a neutral Monte Carlo score of an allocation.
	Outcome = eval.Outcome
	// AdOutcome is one advertiser's share of an Outcome.
	AdOutcome = eval.AdOutcome

	// DatasetOptions parameterizes the synthetic dataset analogues.
	DatasetOptions = gen.Options
)

// Phases of a selection run, in execution order; index
// AllocPhaseTimings.Phase with them (see AllocObserver).
const (
	// PhaseEstimate is KPT estimation, θ sizing, and fresh coverage sums.
	PhaseEstimate = core.PhaseEstimate
	// PhaseScan is the CELF marginal-gain scans.
	PhaseScan = core.PhaseScan
	// PhaseCommit is seed commits and coverage updates.
	PhaseCommit = core.PhaseCommit
	// PhaseGrow is on-demand sample growth plus re-credit.
	PhaseGrow = core.PhaseGrow
)

// NewGraphBuilder creates a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// AllocateTIRM runs Two-phase Iterative Regret Minimization (Algorithm 2),
// the paper's scalable algorithm, with the given RNG seed.
func AllocateTIRM(inst *Instance, seed uint64, opts TIRMOptions) (*TIRMResult, error) {
	return core.TIRM(inst, xrand.New(seed), opts)
}

// BuildIndex builds the reusable per-ad RR-set index — the expensive half
// of TIRM. Hold on to it and call AllocateFromIndex for every re-allocation
// (new budgets, λ, κ, ad subsets): the sampling cost is paid once and the
// allocation for a fixed seed is identical to AllocateTIRM's. opts controls
// only how much is presampled, never the sample content.
func BuildIndex(inst *Instance, seed uint64, opts TIRMOptions) (*Index, error) {
	return core.BuildIndex(inst, seed, opts)
}

// AllocateFromIndex runs TIRM's greedy selection stage against a prebuilt
// index. Safe for concurrent use; the index grows on demand if the request
// needs a larger sample than any before it. Transient selection state is
// recycled through AllocRequest.Pool (a process-wide default when nil), so
// steady-state warm calls allocate almost nothing; long-lived hosts
// serving many indexes should dedicate an AllocWorkspacePool per index,
// as internal/serve does.
func AllocateFromIndex(idx *Index, req AllocRequest) (*TIRMResult, error) {
	return core.AllocateFromIndex(idx, req)
}

// AllocateBatch evaluates many selection requests against one index with
// every request pinned to the same campaign epoch, fanning out under the
// process worker budget. Each result is byte-identical to the sequential
// AllocateFromIndex call for the same request, and requests fail
// independently — one bad request never poisons its siblings.
func AllocateBatch(idx *Index, reqs []AllocRequest) []AllocBatchResult {
	return core.AllocateBatch(idx, reqs)
}

// Campaign-lifecycle simulation types (see internal/sim): advertisers join
// and leave, engagements deplete budgets, and the host periodically
// re-allocates against the residual budgets B_i − spent_i.
type (
	// LifecycleConfig shapes a lifecycle simulation run.
	LifecycleConfig = sim.Config
	// LifecycleResult is a full lifecycle trace (regret over time).
	LifecycleResult = sim.Result
	// LifecycleRound is one round of a lifecycle trace.
	LifecycleRound = sim.RoundReport
	// AdFate is one advertiser's end-of-run lifecycle bookkeeping.
	AdFate = sim.AdFate
)

// RunLifecycle simulates a campaign-lifecycle workload over inst's
// advertisers: the first LifecycleConfig.InitialAds are live at round 1,
// the rest arrive as the deterministic event stream fires, engagements
// deplete budgets, and the index (Index.AddAd / Index.RemoveAd /
// AllocRequest.SpentBudget) re-allocates along the way. Deterministic for
// a fixed (inst, seed, cfg); see examples/lifecycle.
func RunLifecycle(inst *Instance, seed uint64, cfg LifecycleConfig) (*LifecycleResult, error) {
	return sim.Run(inst, seed, cfg)
}

// Online-CPE-learning types (see internal/bandit and DESIGN.md §8): the
// allocator treats each ad's cost-per-engagement as known, but in
// production the engagement rate behind it must be learned from click
// feedback. An estimator maintains per-ad counts and turns them into
// effective-CPE overrides for AllocRequest.CPEs; a nil estimator (or one
// with no feedback) leaves allocations byte-identical to today's.
type (
	// EngagementEstimator learns per-ad engagement rates from feedback
	// events and scores ads with a bandit policy index in (0, 1].
	EngagementEstimator = bandit.Estimator
	// EngagementEvent is one batch of impression/click feedback for an ad.
	EngagementEvent = bandit.Event
	// EstimatorState is an integer-only estimator snapshot: the shard
	// broadcast payload and the exact Snapshot/RestoreEstimator format.
	EstimatorState = bandit.State
)

// Estimator policies accepted by NewEstimator (and LifecycleConfig.Bandit).
const (
	// PolicyUCB is UCB1: optimism proportional to count uncertainty.
	PolicyUCB = bandit.PolicyUCB
	// PolicyThompson is seeded, state-free Thompson sampling.
	PolicyThompson = bandit.PolicyThompson
	// PolicyFrozen never updates its index — the regret-harness baseline.
	PolicyFrozen = bandit.PolicyFrozen
)

// NewEstimator creates an engagement estimator for the given policy
// ("ucb", "thompson", or "frozen"). The seed drives Thompson sampling;
// identical (policy, seed, feedback) always yields identical overrides.
func NewEstimator(policy string, seed uint64) (EngagementEstimator, error) {
	return bandit.New(policy, seed)
}

// RestoreEstimator rebuilds an estimator from a snapshot, exactly: the
// result is indistinguishable from the estimator that produced the state.
func RestoreEstimator(st EstimatorState) (EngagementEstimator, error) {
	return bandit.Restore(st)
}

// SaveIndex persists an index in the binary snapshot format; LoadIndex
// restores it for the same instance (graph + probabilities must match).
func SaveIndex(w io.Writer, idx *Index) error { return idx.WriteSnapshot(w) }

// LoadIndex restores an index saved with SaveIndex. Allocations on the
// loaded index are identical to allocations on the original.
func LoadIndex(inst *Instance, r io.Reader) (*Index, error) {
	return core.LoadIndexSnapshot(inst, r)
}

// AllocateGreedyMC runs Algorithm 1 with Monte Carlo spread estimation
// (`runs` cascades per evaluation, CELF-lazified). Intended for small
// graphs; use AllocateTIRM at scale.
func AllocateGreedyMC(inst *Instance, runs int, seed uint64, opts GreedyOptions) (*GreedyResult, error) {
	return core.Greedy(inst, core.NewMCFactory(inst, runs, xrand.New(seed)), opts)
}

// AllocateGreedyExact runs Algorithm 1 with exact possible-world
// enumeration — usable only on graphs with at most
// diffusion.MaxExactEdges (20) edges; it is the ground-truth allocator for
// toy instances such as Fig1Instance.
func AllocateGreedyExact(inst *Instance, opts GreedyOptions) (*GreedyResult, error) {
	return core.Greedy(inst, core.NewExactFactory(inst), opts)
}

// AllocateGreedyIRIE runs the paper's strongest baseline: Algorithm 1 with
// the IRIE influence-rank heuristic as spread oracle.
func AllocateGreedyIRIE(inst *Instance, opts IRIEOptions, gopts GreedyOptions) (*GreedyResult, error) {
	return core.Greedy(inst, func(i int) core.AdEstimator {
		ad := inst.Ads[i]
		return irie.NewEstimator(inst.G, ad.Params.Probs, ad.Params.CTPs, ad.CPE, opts)
	}, gopts)
}

// AllocateMyopic runs the MYOPIC baseline: every user gets her κ_u most
// relevant ads by δ(u,i)·cpe(i); budgets and virality are ignored.
func AllocateMyopic(inst *Instance) *Allocation { return baselines.Myopic(inst) }

// AllocateMyopicPlus runs MYOPIC+: budget-aware but virality-blind seed
// filling in CTP order, round-robin across ads.
func AllocateMyopicPlus(inst *Instance) *Allocation { return baselines.MyopicPlus(inst) }

// Evaluate scores an allocation with `runs` Monte Carlo cascades per ad
// (the paper uses 10000). Deterministic given seed.
func Evaluate(inst *Instance, alloc *Allocation, runs int, seed uint64) *Outcome {
	return eval.Evaluate(inst, alloc, runs, xrand.New(seed))
}

// Spread estimates the expected TIC-CTP spread σ_i(S) of a seed set for
// one ad with `runs` parallel Monte Carlo cascades.
func Spread(g *Graph, params ItemParams, seeds []int32, runs int, seed uint64) float64 {
	sim := diffusion.NewSimulator(g, params)
	return sim.SpreadMCParallel(seeds, runs, xrand.New(seed))
}

// InfluenceMaximizationResult mirrors tim.Result for the public API.
type InfluenceMaximizationResult = tim.Result

// MaximizeInfluence runs the TIM substrate standalone: select up to k
// seeds maximizing expected IC spread for the given edge probabilities.
func MaximizeInfluence(g *Graph, probs []float32, k int, seed uint64) InfluenceMaximizationResult {
	s := rrset.NewSampler(g, probs, nil)
	return tim.Maximize(s, k, xrand.New(seed), tim.Options{})
}

// Dataset analogues (see internal/gen and DESIGN.md §4 for the
// substitutions relative to the paper's real datasets).
var (
	// NewFlixster builds the FLIXSTER analogue (quality experiments).
	NewFlixster = gen.Flixster
	// NewEpinions builds the EPINIONS analogue (quality experiments).
	NewEpinions = gen.Epinions
	// NewDBLP builds the DBLP analogue (scalability experiments).
	NewDBLP = gen.DBLP
	// NewLiveJournal builds the LIVEJOURNAL analogue (scalability).
	NewLiveJournal = gen.LiveJournal
	// Fig1Instance builds the paper's running example.
	Fig1Instance = gen.Fig1Instance
	// Fig1AllocationA is the CTP-maximizing allocation of Figure 1.
	Fig1AllocationA = gen.Fig1AllocationA
	// Fig1AllocationB is the virality-aware allocation of Figure 1.
	Fig1AllocationB = gen.Fig1AllocationB
)

// NewTopicModel creates a K-topic model over m edges; NewTopicDist
// validates a distribution; ConcentratedTopic returns the paper's
// experimental γ (mass 0.91 on one topic).
func NewTopicModel(k int, m int64) *TopicModel { return topic.NewModel(k, m) }

// NewTopicDist validates and returns a topic distribution.
func NewTopicDist(weights []float64) (TopicDist, error) { return topic.NewDist(weights) }

// ConcentratedTopic returns the paper's experimental ad distribution.
func ConcentratedTopic(k, z int, main float64) TopicDist { return topic.Concentrated(k, z, main) }

// ConstCTP returns a uniform click-through-probability vector.
func ConstCTP(n int, p float64) topic.CTP { return topic.ConstCTP{Nodes: n, P: p} }

// VecCTP validates a per-user click-through-probability vector.
func VecCTP(p []float32) (topic.CTP, error) { return topic.NewVecCTP(p) }

// RegretTerm computes one advertiser's regret |B − Π| + λ·|S| (Eq. 3).
func RegretTerm(budget, revenue, lambda float64, numSeeds int) float64 {
	return core.RegretTerm(budget, revenue, lambda, numSeeds)
}
