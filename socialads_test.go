package socialads_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	socialads "repro"
)

// TestPublicAPIEndToEnd exercises the README quick-start path: generate a
// dataset, allocate with every exported algorithm, evaluate neutrally.
func TestPublicAPIEndToEnd(t *testing.T) {
	inst := socialads.NewFlixster(socialads.DatasetOptions{Seed: 1, Scale: 0.02, Kappa: 2})
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}

	tirm, err := socialads.AllocateTIRM(inst, 42, socialads.TIRMOptions{Eps: 0.3, MinTheta: 4000, MaxTheta: 30000})
	if err != nil {
		t.Fatal(err)
	}
	irie, err := socialads.AllocateGreedyIRIE(inst, socialads.IRIEOptions{}, socialads.GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	myopic := socialads.AllocateMyopic(inst)
	myopicPlus := socialads.AllocateMyopicPlus(inst)

	for name, alloc := range map[string]*socialads.Allocation{
		"TIRM":        tirm.Alloc,
		"GREEDY-IRIE": irie.Alloc,
		"MYOPIC":      myopic,
		"MYOPIC+":     myopicPlus,
	} {
		if err := alloc.Validate(inst); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	out := socialads.Evaluate(inst, tirm.Alloc, 500, 7)
	outMyopic := socialads.Evaluate(inst, myopic, 500, 7)
	if out.TotalRegret >= outMyopic.TotalRegret {
		t.Errorf("TIRM regret %.1f not below MYOPIC %.1f", out.TotalRegret, outMyopic.TotalRegret)
	}
}

// TestPublicTwoStageAllocation exercises the index path of the public API:
// build once, allocate repeatedly (including what-if overrides), persist
// and reload — with the one-shot AllocateTIRM as the reference result.
func TestPublicTwoStageAllocation(t *testing.T) {
	inst := socialads.NewFlixster(socialads.DatasetOptions{Seed: 1, Scale: 0.02, Kappa: 2})
	opts := socialads.TIRMOptions{Eps: 0.3, MinTheta: 4000, MaxTheta: 30000}

	oneShot, err := socialads.AllocateTIRM(inst, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := socialads.BuildIndex(inst, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oneShot.Alloc.Seeds, staged.Alloc.Seeds) {
		t.Fatal("two-stage allocation differs from AllocateTIRM")
	}

	// What-if on the same sample: double every budget.
	budgets := make([]float64, len(inst.Ads))
	for i, ad := range inst.Ads {
		budgets[i] = 2 * ad.Budget
	}
	whatIf, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: opts, Budgets: budgets})
	if err != nil {
		t.Fatal(err)
	}
	if whatIf.Alloc.NumSeeds() < staged.Alloc.NumSeeds() {
		t.Errorf("doubled budgets allocated fewer seeds (%d < %d)",
			whatIf.Alloc.NumSeeds(), staged.Alloc.NumSeeds())
	}

	var buf bytes.Buffer
	if err := socialads.SaveIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := socialads.LoadIndex(inst, &buf)
	if err != nil {
		t.Fatal(err)
	}
	again, err := socialads.AllocateFromIndex(loaded, socialads.AllocRequest{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(staged.Alloc.Seeds, again.Alloc.Seeds) {
		t.Fatal("allocation changed across snapshot save/load")
	}
}

func TestPublicFig1(t *testing.T) {
	inst := socialads.Fig1Instance(0)
	a := socialads.Evaluate(inst, socialads.Fig1AllocationA(), 200000, 1)
	b := socialads.Evaluate(inst, socialads.Fig1AllocationB(), 200000, 2)
	if math.Abs(a.TotalRegret-6.544) > 0.06 {
		t.Errorf("allocation A regret %.3f, want ≈6.544", a.TotalRegret)
	}
	if math.Abs(b.TotalRegret-2.6998) > 0.06 {
		t.Errorf("allocation B regret %.3f, want ≈2.6998", b.TotalRegret)
	}
	g, err := socialads.AllocateGreedyExact(inst, socialads.GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := socialads.Evaluate(inst, g.Alloc, 200000, 3); got.TotalRegret > b.TotalRegret+0.05 {
		t.Errorf("greedy-exact regret %.3f worse than allocation B %.3f", got.TotalRegret, b.TotalRegret)
	}
}

func TestPublicGraphBuilding(t *testing.T) {
	b := socialads.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("graph %d/%d", g.N(), g.M())
	}
	probs := []float32{1, 1}
	sp := socialads.Spread(g, socialads.ItemParams{Probs: probs, CTPs: socialads.ConstCTP(3, 1)}, []int32{0}, 1000, 4)
	if sp != 3 {
		t.Errorf("deterministic chain spread %v, want 3", sp)
	}
}

func TestPublicInfluenceMaximization(t *testing.T) {
	// Hub-and-spoke: the hub is the unique best seed.
	b := socialads.NewGraphBuilder(5)
	for v := int32(1); v < 5; v++ {
		b.AddEdge(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	probs := []float32{0.9, 0.9, 0.9, 0.9}
	res := socialads.MaximizeInfluence(g, probs, 1, 5)
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("seeds %v, want [0]", res.Seeds)
	}
}

func TestPublicTopicHelpers(t *testing.T) {
	d := socialads.ConcentratedTopic(10, 3, 0.91)
	if math.Abs(d[3]-0.91) > 1e-12 {
		t.Errorf("concentrated mass %v", d[3])
	}
	if _, err := socialads.NewTopicDist([]float64{0.5, 0.5}); err != nil {
		t.Errorf("valid dist rejected: %v", err)
	}
	if _, err := socialads.NewTopicDist([]float64{0.5, 0.2}); err == nil {
		t.Error("invalid dist accepted")
	}
	m := socialads.NewTopicModel(2, 3)
	m.Set(0, 0, 0.5)
	m.Set(1, 0, 0.1)
	mixed := m.MustMix(socialads.TopicDist{0.5, 0.5})
	if math.Abs(float64(mixed[0])-0.3) > 1e-6 {
		t.Errorf("mixed prob %v, want 0.3", mixed[0])
	}
	if _, err := socialads.VecCTP([]float32{0.5}); err != nil {
		t.Errorf("valid CTP rejected: %v", err)
	}
	if _, err := socialads.VecCTP([]float32{1.5}); err == nil {
		t.Error("invalid CTP accepted")
	}
}

func TestPublicRegretTerm(t *testing.T) {
	if r := socialads.RegretTerm(10, 8, 0.5, 2); r != 3 {
		t.Errorf("regret %v, want 3", r)
	}
}
