// Quickstart: build a small social graph by hand, describe two advertisers,
// and let TIRM allocate seed users so each campaign's expected revenue
// lands on its budget.
package main

import (
	"fmt"
	"log"

	socialads "repro"
)

func main() {
	// A 12-user network: two communities bridged by user 5.
	// Arc (u,v) means v follows u, so influence flows u -> v.
	b := socialads.NewGraphBuilder(12)
	edges := [][2]int32{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, // community 1
		{5, 6},                                           // bridge
		{6, 7}, {6, 8}, {7, 9}, {8, 9}, {9, 10}, {9, 11}, // community 2
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Influence probabilities per edge (single topic for simplicity).
	probs := make([]float32, g.M())
	for i := range probs {
		probs[i] = 0.4
	}

	// Two advertisers with different budgets; everyone clicks a promoted
	// post with probability 0.3.
	ctp := socialads.ConstCTP(g.N(), 0.3)
	inst := &socialads.Instance{
		G: g,
		Ads: []socialads.Ad{
			{Name: "sneakers", Budget: 3.0, CPE: 1, Params: socialads.ItemParams{Probs: probs, CTPs: ctp}},
			{Name: "headphones", Budget: 1.5, CPE: 1, Params: socialads.ItemParams{Probs: probs, CTPs: ctp}},
		},
		Kappa:  socialads.ConstKappa(1), // at most one promoted ad per user
		Lambda: 0.01,                    // tiny penalty per seed
	}

	// SoftCoverage keeps the revenue estimator unbiased when seed reach
	// overlaps — on a 12-user graph overlap is unavoidable (see README,
	// "The TIRM-W extension").
	res, err := socialads.AllocateTIRM(inst, 42, socialads.TIRMOptions{
		MinTheta:     20000,
		SoftCoverage: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	out := socialads.Evaluate(inst, res.Alloc, 20000, 7)
	fmt.Println("TIRM allocation:")
	for i, ad := range inst.Ads {
		fmt.Printf("  %-10s budget=%.1f revenue=%.2f seeds=%v\n",
			ad.Name, ad.Budget, out.Ads[i].Revenue, res.Alloc.Seeds[i])
	}
	fmt.Printf("total regret: %.3f (%.1f%% of total budget)\n",
		out.TotalRegret, 100*out.RegretOverBudget)
}
