// Lifecycle: a campaign workload in motion. Advertisers join and leave
// over 16 rounds, engagements deplete their budgets, and the host
// re-allocates seeds against the residual budgets B_i − spent_i — the
// regret-minimizing replay of the paper's Eq. 3 as an online process.
//
// Under the hood this exercises the index's campaign mutations
// (Index.AddAd / Index.RemoveAd, which swap immutable epochs) and
// residual-budget selection (AllocRequest.SpentBudget); the same loop is
// served over HTTP by cmd/adserver's POST /ads, DELETE /ads/{name}, and
// POST /spend endpoints. The whole trace is deterministic for a fixed
// seed — run it twice and the regret column is bit-identical.
package main

import (
	"fmt"
	"log"
	"strings"

	socialads "repro"
)

func main() {
	inst := socialads.NewFlixster(socialads.DatasetOptions{Seed: 7, Scale: 0.02, NumAds: 8})
	fmt.Printf("FLIXSTER analogue: %d users, %d follow edges, %d advertisers (4 live, 4 queued)\n\n",
		inst.G.N(), inst.G.M(), len(inst.Ads))

	cfg := socialads.LifecycleConfig{
		InitialAds:     4,
		Rounds:         16,
		ReallocEvery:   4,
		ArrivalProb:    0.5,
		DepartProb:     0.1,
		EngagementRate: 0.3,
		EvalRuns:       400,
		Opts:           socialads.TIRMOptions{MinTheta: 2048, MaxTheta: 8192},
	}
	res, err := socialads.RunLifecycle(inst, 42, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  ads  epoch  realloc  seeds  revenue   spent  residual  regret  regret/B  events")
	for _, r := range res.Trace {
		realloc := "     -"
		if r.Reallocated {
			realloc = "against" // the residual budgets below
		}
		fmt.Printf("%5d  %3d  %5d  %7s  %5d  %7.1f  %6.1f  %8.1f  %6.1f  %7.1f%%  %s\n",
			r.Round, r.NumAds, r.Epoch, realloc, r.TotalSeeds, r.Revenue,
			r.SpentTotal, r.ResidualBudget, r.Regret, 100*r.RegretOverBudget,
			strings.Join(r.Events, " "))
	}

	fmt.Printf("\n%d re-allocations, %d RR-sets sampled over the run, final epoch %d\n",
		res.Reallocations, res.TotalSetsSampled, res.FinalEpoch)
	fmt.Println("\nadvertiser fates:")
	for _, f := range res.Ads {
		span := "live from the start"
		if f.Joined > 0 {
			span = fmt.Sprintf("joined round %d", f.Joined)
		}
		if f.Departed > 0 {
			span += fmt.Sprintf(", left round %d", f.Departed)
		}
		fmt.Printf("  %-6s budget %6.1f  spent %6.1f (%.0f%%)  %s\n",
			f.Name, f.Budget, f.Spent, 100*f.Spent/f.Budget, span)
	}
}
