// Scalability reproduces the paper's §6.2 setting on the DBLP analogue:
// Weighted-Cascade probabilities, CPE = CTP = 1, identical budgets, and a
// fully competitive attention bound of 1. It sweeps the number of
// advertisers and reports TIRM's running time, RR-set count and memory —
// the Fig. 6(a) / Table 4 story in one runnable program.
package main

import (
	"fmt"
	"log"
	"time"

	socialads "repro"
)

func main() {
	const scale = 0.03 // ≈9.5K nodes; raise toward 1.0 for the paper's 317K
	fmt.Println("DBLP analogue, Weighted Cascade, per-ad budget 5000 (scaled), κ=1")
	fmt.Printf("%4s %12s %10s %12s %12s %10s\n", "h", "time", "seeds", "RR-sets", "mem (MB)", "regret")

	for _, h := range []int{1, 2, 5, 10} {
		inst := socialads.NewDBLP(socialads.DatasetOptions{
			Seed:   1,
			Scale:  scale,
			NumAds: h,
			Kappa:  1,
		})
		start := time.Now()
		res, err := socialads.AllocateTIRM(inst, 42, socialads.TIRMOptions{
			Eps:      0.2, // the paper's scalability setting
			MinTheta: 10000,
			MaxTheta: 200000,
		})
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		out := socialads.Evaluate(inst, res.Alloc, 500, 7)
		fmt.Printf("%4d %12s %10d %12d %12.1f %10.1f\n",
			h, wall.Round(time.Millisecond), res.Alloc.NumSeeds(),
			res.TotalSetsSampled, float64(res.MemBytes)/1e6, out.TotalRegret)
	}
	fmt.Println("\nExpected shape (paper Fig. 6a / Table 4): time and memory grow ~linearly with h.")
}
