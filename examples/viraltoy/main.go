// Viraltoy walks through the paper's running example (Figure 1 and
// Examples 1–2): six users, four ads, and two hand-built allocations that
// show why virality-aware allocation beats CTP matching — then lets
// Algorithm 1 (exact oracle) and TIRM find their own allocations.
package main

import (
	"fmt"
	"log"

	socialads "repro"
)

func main() {
	fmt.Println("Figure 1 gadget: v1,v2 -> v3 (p=0.2), v3 -> v4,v5 (p=0.5), v4,v5 -> v6 (p=0.1)")
	fmt.Println("ads a,b,c,d: CTP .9/.8/.7/.6, budgets 4/2/2/1, CPE 1, attention bound 1")
	fmt.Println()

	for _, lambda := range []float64{0, 0.1} {
		inst := socialads.Fig1Instance(lambda)
		runs := 400000

		a := socialads.Evaluate(inst, socialads.Fig1AllocationA(), runs, 1)
		bAlloc := socialads.Evaluate(inst, socialads.Fig1AllocationB(), runs, 2)
		fmt.Printf("λ = %.1f\n", lambda)
		fmt.Printf("  allocation A (myopic: everyone to ad a): regret %.2f  (paper: %.1f)\n",
			a.TotalRegret, map[float64]float64{0: 6.6, 0.1: 7.2}[lambda])
		fmt.Printf("  allocation B (virality-aware):           regret %.2f  (paper: %.1f)\n",
			bAlloc.TotalRegret, map[float64]float64{0: 2.7, 0.1: 3.3}[lambda])

		greedy, err := socialads.AllocateGreedyExact(inst, socialads.GreedyOptions{})
		if err != nil {
			log.Fatal(err)
		}
		g := socialads.Evaluate(inst, greedy.Alloc, runs, 3)
		fmt.Printf("  Greedy (Algorithm 1, exact oracle):      regret %.2f  seeds %v\n",
			g.TotalRegret, greedy.Alloc.Seeds)

		tirm, err := socialads.AllocateTIRM(inst, 4, socialads.TIRMOptions{MinTheta: 60000})
		if err != nil {
			log.Fatal(err)
		}
		t := socialads.Evaluate(inst, tirm.Alloc, runs, 5)
		fmt.Printf("  TIRM (Algorithm 2):                      regret %.2f  seeds %v\n",
			t.TotalRegret, tirm.Alloc.Seeds)
		fmt.Println()
	}

	// Per-ad drill-down for allocation B (the paper's Example 1 numbers).
	inst := socialads.Fig1Instance(0)
	out := socialads.Evaluate(inst, socialads.Fig1AllocationB(), 400000, 6)
	fmt.Println("allocation B per-ad revenue (paper: 2.5, 1.7, 1.5, 0.6):")
	for _, ao := range out.Ads {
		fmt.Printf("  ad %s: budget %.1f revenue %.2f regret %.2f\n",
			ao.Name, ao.Budget, ao.Revenue, ao.Regret)
	}
}
