// Influencemax runs the TIM substrate standalone: classical influence
// maximization (Kempe et al.) with the two-phase RR-set algorithm of Tang
// et al. that TIRM builds on. It selects k seeds on the EPINIONS analogue,
// validates the RR-sample spread estimate against Monte Carlo simulation,
// and shows the submodular diminishing returns the paper's analysis leans
// on throughout.
package main

import (
	"fmt"

	socialads "repro"
)

func main() {
	inst := socialads.NewEpinions(socialads.DatasetOptions{Seed: 1, Scale: 0.05})
	g := inst.G
	// Use ad 0's mixed edge probabilities as the IC instance.
	probs := inst.Ads[0].Params.Probs
	fmt.Printf("EPINIONS analogue: %d nodes, %d edges; IC probabilities of ad %q\n\n",
		g.N(), g.M(), inst.Ads[0].Name)

	fmt.Printf("%4s %14s %16s %14s\n", "k", "est. spread", "MC spread", "gain per seed")
	prev, prevK := 0.0, 0
	for _, k := range []int{1, 2, 5, 10, 20, 50} {
		res := socialads.MaximizeInfluence(g, probs, k, 42)
		// Validate the RR estimate with an independent MC simulation of the
		// classical IC model (CTP = 1: seeds always activate).
		mc := socialads.Spread(g, socialads.ItemParams{
			Probs: probs,
			CTPs:  socialads.ConstCTP(g.N(), 1),
		}, res.Seeds, 20000, 7)
		fmt.Printf("%4d %14.1f %16.1f %+14.1f\n", k, res.EstSpread, mc, (mc-prev)/float64(k-prevK))
		prev, prevK = mc, k
	}
	fmt.Println("\nDiminishing per-seed gains illustrate the submodularity that")
	fmt.Println("underpins the paper's Theorems 2–4 and TIRM's seed-size estimation.")
}
