// Marketplace reproduces the paper's quality-experiment setting on the
// FLIXSTER analogue: ten advertisers with topic-concentrated ads compete
// for users under attention bounds, and all four algorithms (MYOPIC,
// MYOPIC+, GREEDY-IRIE, TIRM) are compared by Monte-Carlo-evaluated regret
// — the §6.1 story in one runnable program.
package main

import (
	"fmt"
	"log"
	"time"

	socialads "repro"
)

func main() {
	inst := socialads.NewFlixster(socialads.DatasetOptions{
		Seed:  1,
		Scale: 0.05, // 1.5K users; raise toward 1.0 for the paper's 30K
		Kappa: 2,
	})
	fmt.Printf("FLIXSTER analogue: %d users, %d follow edges, %d advertisers, total budget %.0f\n\n",
		inst.G.N(), inst.G.M(), len(inst.Ads), inst.TotalBudget())

	type result struct {
		name  string
		alloc *socialads.Allocation
		wall  time.Duration
	}
	var results []result

	run := func(name string, f func() (*socialads.Allocation, error)) {
		start := time.Now()
		alloc, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		results = append(results, result{name, alloc, time.Since(start)})
	}

	run("MYOPIC", func() (*socialads.Allocation, error) {
		return socialads.AllocateMyopic(inst), nil
	})
	run("MYOPIC+", func() (*socialads.Allocation, error) {
		return socialads.AllocateMyopicPlus(inst), nil
	})
	run("GREEDY-IRIE", func() (*socialads.Allocation, error) {
		res, err := socialads.AllocateGreedyIRIE(inst, socialads.IRIEOptions{Alpha: 0.8}, socialads.GreedyOptions{})
		if err != nil {
			return nil, err
		}
		return res.Alloc, nil
	})
	run("TIRM", func() (*socialads.Allocation, error) {
		res, err := socialads.AllocateTIRM(inst, 42, socialads.TIRMOptions{Eps: 0.2, MinTheta: 10000, MaxTheta: 200000})
		if err != nil {
			return nil, err
		}
		return res.Alloc, nil
	})

	fmt.Printf("%-12s %10s %10s %8s %10s %8s\n", "algorithm", "regret", "% budget", "seeds", "targeted", "time")
	for _, r := range results {
		out := socialads.Evaluate(inst, r.alloc, 2000, 7)
		fmt.Printf("%-12s %10.1f %9.1f%% %8d %10d %8s\n",
			r.name, out.TotalRegret, 100*out.RegretOverBudget,
			out.TotalSeeds, out.DistinctTargeted, r.wall.Round(time.Millisecond))
	}
	fmt.Println("\nExpected shape (paper Fig. 3): TIRM ≤ GREEDY-IRIE ≪ MYOPIC+ ≤ MYOPIC.")
}
